"""``repro serve``: the sweep service tying orchestrator to HTTP.

One :class:`SweepService` owns a :class:`~repro.service.jobs.JobStore`,
runs each submitted job's orchestrator on a daemon thread, and exposes
the control API:

==========  =================================  =============================
method      path                               purpose
==========  =================================  =============================
GET         /healthz                           liveness + running-job count
POST        /v1/jobs                           submit a JobSpec, returns id
GET         /v1/jobs                           list all jobs' statuses
GET         /v1/jobs/{id}                      status + live progress
POST        /v1/jobs/{id}/cancel               cooperative cancellation
GET         /v1/jobs/{id}/results              canonical results JSON
POST        /v1/queue/lease                    worker: lease next chunk
POST        /v1/queue/heartbeat                worker: extend a lease
POST        /v1/queue/complete                 worker: deliver chunk results
POST        /v1/queue/fail                     worker: report a chunk failure
==========  =================================  =============================

Live progress comes from ``Orchestrator.status()`` — done/total, cache
hit-rate and the streaming p50/p99 stretch the heartbeat accumulates
from each result's online-metrics payload — plus the chunk queue's
lease state for work-queue jobs.

At startup the service re-launches every job left ``pending`` or
``running`` by a previous process: the rebuilt orchestrator resolves
all completed work from the shared disk cache, so a killed server (or
worker) resumes by re-running only incomplete chunks.
"""

from __future__ import annotations

import logging
import threading
import time
from pathlib import Path
from typing import Optional, Union

from ..core.executors import (
    InProcessExecutor,
    PoolExecutor,
    WorkQueueExecutor,
)
from ..core.executors.workqueue import ChunkQueue
from ..core.orchestrator import Orchestrator, SweepCancelled, TaskError
from ..obs.manifest import RunJournal, build_manifest
from .http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    Router,
    ThreadedHttpServer,
    run_server_in_thread,
)
from .jobs import (
    JobSpec,
    JobStore,
    canonical_grid_payload,
    decode_chunk_results,
)

_log = logging.getLogger("repro.service.server")


class _JobRuntime:
    """In-memory handle on one executing job."""

    def __init__(self, job_id: str, spec: JobSpec) -> None:
        self.job_id = job_id
        self.spec = spec
        self.orchestrator: Optional[Orchestrator] = None
        self.queue: Optional[ChunkQueue] = None
        self.thread: Optional[threading.Thread] = None
        self.done = threading.Event()


class SweepService:
    """The HTTP sweep service: job lifecycle + work-queue routing."""

    def __init__(
        self,
        state_dir: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.store = JobStore(state_dir)
        self.host = host
        self.port = port
        self._running: dict[str, _JobRuntime] = {}
        self._lock = threading.Lock()
        self._http: Optional[ThreadedHttpServer] = None
        self.router = Router()
        self.router.add("GET", "/healthz", self._route_health)
        self.router.add("POST", "/v1/jobs", self._route_submit)
        self.router.add("GET", "/v1/jobs", self._route_list)
        self.router.add("GET", "/v1/jobs/{job_id}", self._route_status)
        self.router.add(
            "POST", "/v1/jobs/{job_id}/cancel", self._route_cancel
        )
        self.router.add(
            "GET", "/v1/jobs/{job_id}/results", self._route_results
        )
        self.router.add("POST", "/v1/queue/lease", self._route_lease)
        self.router.add(
            "POST", "/v1/queue/heartbeat", self._route_heartbeat
        )
        self.router.add("POST", "/v1/queue/complete", self._route_complete)
        self.router.add("POST", "/v1/queue/fail", self._route_fail)

    # -- lifecycle -------------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        return self.router.dispatch(request)

    def start(self) -> int:
        """Resume incomplete jobs, bind the socket; returns the port."""
        resumed = self.resume_incomplete()
        if resumed:
            _log.info("resumed %d incomplete job(s): %s",
                      len(resumed), ", ".join(resumed))
        self._http = run_server_in_thread(self.handle, self.host, self.port)
        self.port = self._http.port
        return self.port

    def stop(self) -> None:
        if self._http is not None:
            self._http.stop()
            self._http = None

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until no job is executing (tests/shutdown helper)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                running = [
                    rt for rt in self._running.values()
                    if not rt.done.is_set()
                ]
            if not running:
                return True
            time.sleep(0.02)
        return False

    def resume_incomplete(self) -> list[str]:
        """Re-launch every job a previous process left unfinished."""
        resumed = []
        for job_id in self.store.job_ids():
            try:
                state = self.store.read_status(job_id).get("state")
            except (KeyError, ValueError):
                state = "pending"  # spec exists but status is torn
            if state in ("pending", "running"):
                self._launch(job_id, self.store.spec(job_id))
                resumed.append(job_id)
        return resumed

    def submit(self, spec: JobSpec) -> str:
        job_id = self.store.create_job(spec)
        self._launch(job_id, spec)
        return job_id

    # -- job execution ---------------------------------------------------

    def _launch(self, job_id: str, spec: JobSpec) -> None:
        runtime = _JobRuntime(job_id, spec)
        with self._lock:
            self._running[job_id] = runtime
        thread = threading.Thread(
            target=self._run_job, args=(runtime,),
            name=f"repro-{job_id}", daemon=True,
        )
        runtime.thread = thread
        thread.start()

    def _make_executor(
        self, runtime: _JobRuntime,
    ) -> Union[InProcessExecutor, PoolExecutor, WorkQueueExecutor]:
        spec = runtime.spec
        if spec.executor == "pool":
            return PoolExecutor(n_workers=spec.n_workers)
        if spec.executor == "workqueue":
            def publish(queue: ChunkQueue) -> None:
                runtime.queue = queue

            return WorkQueueExecutor(
                lease_ttl_s=spec.lease_ttl_s,
                max_attempts=spec.max_attempts,
                on_queue_ready=publish,
            )
        return InProcessExecutor()

    def _run_job(self, runtime: _JobRuntime) -> None:
        job_id, spec = runtime.job_id, runtime.spec
        jdir = self.store.job_dir(job_id)
        self.store.write_status(job_id, "running", executor=spec.executor)
        journal = RunJournal(jdir / "journal.jsonl")
        orchestrator = Orchestrator(
            list(spec.configs),
            spec.n_replications,
            first_replication=spec.first_replication,
            cache=self.store.cache(),
            chunksize=spec.chunksize,
            n_workers=spec.n_workers,
            journal=journal,
        )
        runtime.orchestrator = orchestrator
        executor = self._make_executor(runtime)
        t0 = time.perf_counter()
        try:
            grids = orchestrator.execute(executor)
        except SweepCancelled:
            _log.info("job %s cancelled", job_id)
            journal.append({"event": "cancelled"})
            self.store.write_status(job_id, "cancelled")
        except TaskError as err:
            _log.error("job %s failed: %s", job_id, err)
            journal.append({"event": "failed", "error": str(err)})
            self.store.write_status(job_id, "failed", error=str(err))
        except Exception as exc:  # repro-lint: disable=EXC001 -- job
            # thread boundary: an escaping exception must land in the
            # persisted status (clients poll it), not die silently on a
            # daemon thread
            _log.exception("job %s crashed", job_id)
            journal.append({"event": "failed", "error": repr(exc)})
            self.store.write_status(job_id, "failed", error=repr(exc))
        else:
            wall = time.perf_counter() - t0
            self.store.write_results(
                job_id, canonical_grid_payload(grids)
            )
            build_manifest(
                list(spec.configs),
                spec.n_replications,
                first_replication=spec.first_replication,
                n_workers=spec.n_workers,
                wall_time_s=wall,
                extra={
                    "job_id": job_id,
                    "executor": spec.executor,
                    "service": True,
                },
            ).write(jdir / "manifest.json")
            journal.append({"event": "done", "total": orchestrator.total})
            self.store.write_status(
                job_id, "done", executor=spec.executor,
                total=orchestrator.total,
            )
        finally:
            runtime.done.set()
            with self._lock:
                self._running.pop(job_id, None)

    # -- routes: jobs ----------------------------------------------------

    def _route_health(self, request: HttpRequest) -> HttpResponse:
        with self._lock:
            running = len(self._running)
        return HttpResponse.json({"ok": True, "jobs_running": running})

    def _route_submit(self, request: HttpRequest) -> HttpResponse:
        payload = request.json()
        try:
            spec = JobSpec.from_dict(payload)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad job spec: {exc}") from exc
        job_id = self.submit(spec)
        return HttpResponse.json({"job_id": job_id}, status=201)

    def _route_list(self, request: HttpRequest) -> HttpResponse:
        jobs = []
        for job_id in self.store.job_ids():
            try:
                jobs.append(self.store.read_status(job_id))
            except (KeyError, ValueError):
                jobs.append({"job_id": job_id, "state": "unknown"})
        return HttpResponse.json({"jobs": jobs})

    def _status_payload(self, job_id: str) -> dict:
        try:
            payload = self.store.read_status(job_id)
        except KeyError:
            raise HttpError(404, f"no such job {job_id!r}") from None
        with self._lock:
            runtime = self._running.get(job_id)
        if runtime is not None and runtime.orchestrator is not None:
            payload["progress"] = runtime.orchestrator.status()
            if runtime.queue is not None:
                payload["queue"] = runtime.queue.snapshot()
        return payload

    def _route_status(
        self, request: HttpRequest, job_id: str
    ) -> HttpResponse:
        return HttpResponse.json(self._status_payload(job_id))

    def _route_cancel(
        self, request: HttpRequest, job_id: str
    ) -> HttpResponse:
        try:
            status = self.store.read_status(job_id)
        except KeyError:
            raise HttpError(404, f"no such job {job_id!r}") from None
        with self._lock:
            runtime = self._running.get(job_id)
        if runtime is not None and runtime.orchestrator is not None:
            runtime.orchestrator.cancel()
            return HttpResponse.json({"job_id": job_id, "cancelling": True})
        if status.get("state") in ("pending", "running"):
            # Not executing in this process (e.g. pre-resume window).
            self.store.write_status(job_id, "cancelled")
            return HttpResponse.json({"job_id": job_id, "cancelling": True})
        raise HttpError(
            409, f"job {job_id} is {status.get('state')}; nothing to cancel"
        )

    def _route_results(
        self, request: HttpRequest, job_id: str
    ) -> HttpResponse:
        try:
            status = self.store.read_status(job_id)
        except KeyError:
            raise HttpError(404, f"no such job {job_id!r}") from None
        body = self.store.read_results(job_id)
        if body is None:
            raise HttpError(
                404,
                f"job {job_id} has no results yet "
                f"(state: {status.get('state')})",
            )
        return HttpResponse(200, body, "application/json")

    # -- routes: work queue ----------------------------------------------

    def _live_queues(self) -> list[tuple[str, _JobRuntime, ChunkQueue]]:
        with self._lock:
            runtimes = sorted(self._running.items())
        return [
            (job_id, rt, rt.queue)
            for job_id, rt in runtimes
            if rt.queue is not None
        ]

    def _route_lease(self, request: HttpRequest) -> HttpResponse:
        worker_id = str(request.json().get("worker_id", "anonymous"))
        for job_id, runtime, queue in self._live_queues():
            lease = queue.lease(worker_id)
            if lease is None:
                continue
            assert runtime.orchestrator is not None
            configs = [
                cfg.to_dict() for cfg in runtime.orchestrator.unique
            ]
            return HttpResponse.json({
                "job_id": job_id,
                "lease": lease.to_dict(),
                "configs": configs,
            })
        return HttpResponse.json({"job_id": None, "lease": None})

    def _queue_for(self, payload: dict) -> tuple[str, ChunkQueue]:
        job_id = str(payload.get("job_id", ""))
        with self._lock:
            runtime = self._running.get(job_id)
        if runtime is None or runtime.queue is None:
            raise HttpError(
                404, f"job {job_id!r} has no active work queue"
            )
        return job_id, runtime.queue

    @staticmethod
    def _lease_ref(payload: dict) -> tuple[int, int]:
        try:
            return int(payload["chunk_id"]), int(payload["token"])
        except (KeyError, TypeError, ValueError):
            raise HttpError(
                400, "payload needs integer chunk_id and token"
            ) from None

    def _route_heartbeat(self, request: HttpRequest) -> HttpResponse:
        payload = request.json()
        _, queue = self._queue_for(payload)
        chunk_id, token = self._lease_ref(payload)
        alive = queue.heartbeat(chunk_id, token)
        return HttpResponse.json({"alive": alive})

    def _route_complete(self, request: HttpRequest) -> HttpResponse:
        payload = request.json()
        _, queue = self._queue_for(payload)
        chunk_id, token = self._lease_ref(payload)
        try:
            results = decode_chunk_results(str(payload.get("results", "")))
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc
        fresh = queue.complete(chunk_id, token, results)
        return HttpResponse.json({"accepted": True, "fresh_lease": fresh})

    def _route_fail(self, request: HttpRequest) -> HttpResponse:
        payload = request.json()
        _, queue = self._queue_for(payload)
        chunk_id, token = self._lease_ref(payload)
        ok = queue.fail(
            chunk_id, token, str(payload.get("cause", "unspecified"))
        )
        return HttpResponse.json({"accepted": ok})
