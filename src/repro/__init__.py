"""repro — reproduction of "On the Harmfulness of Redundant Batch Requests"
(Henri Casanova, HPDC 2006).

A multi-cluster batch-scheduling simulator and study harness: users
submit the same job to several independently scheduled clusters; the
first copy to start wins and the rest are cancelled.  The package
reproduces the paper's three questions — impact on scheduling
performance/fairness, on system load, and on predictability.

Quickstart::

    from repro import ExperimentConfig, compare_schemes

    cfg = ExperimentConfig(n_clusters=10, duration=1800.0, seed=7)
    cmp = compare_schemes(cfg, ["R2", "ALL"], n_replications=5)
    print(cmp.relative("ALL").avg_stretch)   # < 1.0: redundancy helps

Subpackages
-----------
``repro.sim``
    Discrete-event kernel and reproducible RNG streams.
``repro.cluster``
    Clusters and multi-site platforms.
``repro.sched``
    FCFS, EASY and Conservative Backfilling schedulers.
``repro.workload``
    Lublin–Feitelson model, runtime-estimate models, SWF traces.
``repro.core``
    Redundancy schemes, the first-start-wins coordinator, experiment
    runner and metrics.
``repro.middleware``
    Section 4: scheduler/middleware throughput and capacity analysis.
``repro.predict``
    Section 5: queue-waiting-time prediction accuracy.
``repro.analysis``
    Tables, ASCII plots, post-run timelines, and the experiment
    registry.
``repro.obs``
    Observability: lifecycle event traces, metrics registry, run
    manifests, structured logging.
``repro.ext``
    Extensions the paper names as future work.
"""

from .core import (
    ExperimentConfig,
    ExperimentResult,
    JobOutcome,
    RelativeMetrics,
    ResultCache,
    SchemeComparison,
    SweepEngine,
    compare_schemes,
    run_grid,
    run_replications,
    run_single,
)

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "JobOutcome",
    "RelativeMetrics",
    "SchemeComparison",
    "SweepEngine",
    "ResultCache",
    "compare_schemes",
    "run_grid",
    "run_replications",
    "run_single",
    "__version__",
]
