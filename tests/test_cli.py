"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig1"])
        assert args.experiment == "fig1"
        assert args.scale is None

    def test_run_with_scale(self):
        args = build_parser().parse_args(["run", "tab4", "--scale", "smoke"])
        assert args.scale == "smoke"

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig1", "--scale", "huge"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp in ("fig1", "tab4", "sec4"):
            assert exp in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_sec4_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["run", "sec4"]) == 0
        out = capsys.readouterr().out
        assert "capacity analysis" in out
        assert "bottleneck" in out

    def test_run_with_exports(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        json_path = tmp_path / "report.json"
        csv_dir = tmp_path / "csv"
        assert main([
            "run", "fig5",
            "--json", str(json_path),
            "--csv", str(csv_dir),
        ]) == 0
        assert json_path.exists()
        import json

        payload = json.loads(json_path.read_text())
        assert payload["exp_id"] == "fig5"
        csvs = list(csv_dir.glob("fig5_table*.csv"))
        assert len(csvs) >= 2
