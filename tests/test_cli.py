"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig1"])
        assert args.experiment == "fig1"
        assert args.scale is None

    def test_run_with_scale(self):
        args = build_parser().parse_args(["run", "tab4", "--scale", "smoke"])
        assert args.scale == "smoke"

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig1", "--scale", "huge"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verbosity_flags(self):
        args = build_parser().parse_args(["-vv", "list"])
        assert args.verbose == 2 and not args.quiet
        args = build_parser().parse_args(["-q", "list"])
        assert args.quiet

    def test_trace_record_defaults(self):
        args = build_parser().parse_args(
            ["trace", "record", "--out", "d"]
        )
        assert args.trace_command == "record"
        assert args.schemes == ["ALL"]
        assert args.replications == 1

    def test_trace_filter_rejects_bad_type(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "filter", "t.jsonl", "--type", "nonsense"]
            )

    def test_trace_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])


class TestMain:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp in ("fig1", "tab4", "sec4"):
            assert exp in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_sec4_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["run", "sec4"]) == 0
        out = capsys.readouterr().out
        assert "capacity analysis" in out
        assert "bottleneck" in out

    def test_run_with_exports(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        json_path = tmp_path / "report.json"
        csv_dir = tmp_path / "csv"
        assert main([
            "run", "fig5",
            "--json", str(json_path),
            "--csv", str(csv_dir),
        ]) == 0
        assert json_path.exists()
        import json

        payload = json.loads(json_path.read_text())
        assert payload["exp_id"] == "fig5"
        csvs = list(csv_dir.glob("fig5_table*.csv"))
        assert len(csvs) >= 2

    def test_run_diagnostics_on_stderr_not_stdout(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["run", "sec4"]) == 0
        captured = capsys.readouterr()
        assert "took" not in captured.out  # timing line moved to stderr
        assert "took" in captured.err


class TestTraceCommand:
    RECORD = ["trace", "record", "--schemes", "R2", "--replications", "1",
              "--clusters", "2", "--nodes", "16", "--duration", "200"]

    @pytest.fixture(scope="class")
    def trace_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace")
        assert main(self.RECORD + ["--out", str(out)]) == 0
        return out

    def test_record_writes_artifacts(self, trace_dir):
        assert (trace_dir / "trace.jsonl").exists()
        assert (trace_dir / "manifest.json").exists()
        manifest = json.loads((trace_dir / "manifest.json").read_text())
        assert manifest["kind"] == "repro-manifest"
        assert manifest["extra"]["n_trace_events"] > 0

    def test_summary(self, trace_dir, capsys):
        assert main(["trace", "summary",
                     str(trace_dir / "trace.jsonl")]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_events"] > 0
        assert "submit" in summary["by_type"]

    def test_export_chrome(self, trace_dir, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert main(["trace", "export-chrome",
                     str(trace_dir / "trace.jsonl"),
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_filter_outputs_jsonl(self, trace_dir, capsys):
        assert main(["trace", "filter", str(trace_dir / "trace.jsonl"),
                     "--type", "start", "--cluster", "0"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        for line in lines:
            ev = json.loads(line)
            assert ev["type"] == "start" and ev["cluster"] == 0

    def test_record_parallel_identical(self, trace_dir, tmp_path):
        out = tmp_path / "parallel"
        assert main(self.RECORD + ["--out", str(out),
                                   "--workers", "2"]) == 0
        assert (out / "trace.jsonl").read_bytes() == (
            trace_dir / "trace.jsonl"
        ).read_bytes()


class TestProbeCommand:
    RECORD = ["probe", "record", "--schemes", "R2", "--replications", "1",
              "--clusters", "2", "--nodes", "16", "--duration", "200",
              "--cadence", "40"]

    @pytest.fixture(scope="class")
    def probe_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("probe")
        assert main(self.RECORD + ["--out", str(out)]) == 0
        return out

    def test_record_writes_artifacts(self, probe_dir):
        assert (probe_dir / "probes.jsonl").exists()
        manifest = json.loads((probe_dir / "manifest.json").read_text())
        assert manifest["kind"] == "repro-manifest"
        assert manifest["extra"]["n_probe_records"] > 0
        assert manifest["extra"]["probe_cadence"] == 40.0
        assert manifest["online_schema_version"] >= 1

    def test_record_rejects_bad_cadence(self, tmp_path):
        assert main(["probe", "record", "--out", str(tmp_path / "x"),
                     "--cadence", "0"]) == 2

    def test_summary(self, probe_dir, capsys):
        assert main(["probe", "summary",
                     str(probe_dir / "probes.jsonl")]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_records"] > 0
        assert set(summary["by_cluster"]) == {"0", "1"}

    def test_plot_ascii(self, probe_dir, capsys):
        assert main(["probe", "plot-ascii",
                     str(probe_dir / "probes.jsonl"),
                     "--field", "queue_depth"]) == 0
        out = capsys.readouterr().out
        assert "queue_depth" in out
        assert "cluster 0" in out and "cluster 1" in out

    def test_plot_ascii_unknown_field(self, probe_dir):
        assert main(["-q", "probe", "plot-ascii",
                     str(probe_dir / "probes.jsonl"),
                     "--field", "nonsense"]) == 2

    def test_compare_identical(self, probe_dir, capsys):
        path = str(probe_dir / "probes.jsonl")
        assert main(["probe", "compare", path, path]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["identical"] is True

    def test_compare_divergent(self, probe_dir, tmp_path, capsys):
        other = tmp_path / "other"
        assert main(["probe", "record", "--schemes", "R3",
                     "--replications", "1", "--clusters", "2",
                     "--nodes", "16", "--duration", "200",
                     "--cadence", "40", "--out", str(other)]) == 0
        assert main(["probe", "compare",
                     str(probe_dir / "probes.jsonl"),
                     str(other / "probes.jsonl")]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["identical"] is False
        assert report["divergences"]

    def test_export_chrome_counters(self, probe_dir, tmp_path):
        out = tmp_path / "counters.json"
        assert main(["probe", "export-chrome",
                     str(probe_dir / "probes.jsonl"),
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert all("value" in e["args"] for e in counters)

    def test_record_parallel_identical(self, probe_dir, tmp_path):
        out = tmp_path / "parallel"
        assert main(self.RECORD + ["--out", str(out),
                                   "--workers", "2"]) == 0
        assert (out / "probes.jsonl").read_bytes() == (
            probe_dir / "probes.jsonl"
        ).read_bytes()


class TestBenchCommand:
    def test_bench_payload_keys(self, capsys):
        assert main(["-q", "bench", "--replications", "1",
                     "--schemes", "R2", "--workers", "2",
                     "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results_identical"] is True
        assert payload["manifest"]["kind"] == "repro-manifest"
        counters = payload["metrics"]["counters"]
        assert counters["runs"] == 2  # baseline + R2, one replication each
        assert counters["submissions"] > 0
        assert counters["cache_hits"] >= 2  # the warm sweep hit every task
        timings = payload["metrics"]["timings_s"]
        for phase in ("generate_s", "simulate_s", "aggregate_s",
                      "bench_serial_s", "bench_parallel_s"):
            assert phase in timings
        online = payload["online"]
        assert online["schema"] >= 1
        stretch = online["per_scheme"]["R2"]["metrics"]["stretch"]
        assert stretch["count"] > 0
        for q in ("p50", "p90", "p99"):
            assert stretch["quantiles"][q] is not None
        assert online["baseline"]["metrics"]["stretch"]["count"] > 0
        assert online["overall"]["n_runs"] >= 1


class TestServiceCommands:
    """The ``serve``/``worker``/``job``/``cache`` surface of the CLI."""

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--state-dir", "runs/svc"]
        )
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8642

    def test_worker_parser_defaults(self):
        args = build_parser().parse_args(
            ["worker", "--url", "http://127.0.0.1:1"]
        )
        assert args.max_chunks is None
        assert args.max_idle_polls is None
        assert args.poll_interval == pytest.approx(0.2)

    def test_job_submit_defaults(self):
        args = build_parser().parse_args(
            ["job", "submit", "--url", "http://127.0.0.1:1"]
        )
        assert args.job_command == "submit"
        assert args.schemes == ["R2"]
        assert args.executor == "inprocess"
        assert not args.wait

    def test_job_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["job"])

    def test_bad_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "job", "submit", "--url", "u", "--executor", "telegraph",
            ])

    def test_spec_payload_from_flags(self):
        from repro.cli import _job_spec_payload

        args = build_parser().parse_args([
            "job", "submit", "--url", "u", "--schemes", "R2", "NONE",
            "--replications", "3", "--executor", "workqueue",
            "--clusters", "2", "--nodes", "8", "--duration", "120",
        ])
        payload = _job_spec_payload(args)
        assert [c["scheme"] for c in payload["configs"]] == ["R2", "NONE"]
        assert payload["n_replications"] == 3
        assert payload["executor"] == "workqueue"
        assert payload["configs"][0]["n_clusters"] == 2

    def test_spec_payload_from_file_validates(self, tmp_path):
        from repro.cli import _job_spec_payload
        from repro.service.jobs import JobSpec

        good = tmp_path / "spec.json"
        args = build_parser().parse_args([
            "job", "submit", "--url", "u", "--spec", str(good),
        ])
        payload = _job_spec_payload(
            build_parser().parse_args([
                "job", "submit", "--url", "u",
            ])
        )
        good.write_text(json.dumps(payload), encoding="utf-8")
        assert JobSpec.from_dict(_job_spec_payload(args)) == \
            JobSpec.from_dict(payload)

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"configs": [], "n_replications": 1}))
        bad_args = build_parser().parse_args([
            "job", "submit", "--url", "u", "--spec", str(bad),
        ])
        with pytest.raises(ValueError):
            _job_spec_payload(bad_args)

    def test_job_commands_against_live_service(self, tmp_path, capsys):
        from repro.core.config import ExperimentConfig
        from repro.core.parallel import run_grid
        from repro.service.jobs import canonical_grid_json
        from repro.service.server import SweepService

        service = SweepService(tmp_path / "state", port=0)
        port = service.start()
        url = f"http://127.0.0.1:{port}"
        try:
            assert main([
                "-q", "job", "submit", "--url", url,
                "--schemes", "NONE", "--replications", "1",
                "--clusters", "2", "--nodes", "8", "--duration", "120",
                "--wait", "--timeout", "120",
            ]) == 0
            status = json.loads(capsys.readouterr().out)
            assert status["state"] == "done"
            job_id = status["job_id"]

            assert main(["-q", "job", "list", "--url", url]) == 0
            lines = capsys.readouterr().out.strip().splitlines()
            assert any(json.loads(ln)["job_id"] == job_id for ln in lines)

            out_path = tmp_path / "grid.json"
            assert main([
                "-q", "job", "result", "--url", url, job_id,
                "--out", str(out_path),
            ]) == 0
            reference = run_grid([ExperimentConfig(
                scheme="NONE", algorithm="easy", n_clusters=2,
                nodes_per_cluster=8, duration=120.0, offered_load=2.0,
                drain=True, seed=20060619,
            )], 1)
            assert out_path.read_bytes() == (
                canonical_grid_json(reference) + "\n"
            ).encode()

            assert main([
                "-q", "job", "status", "--url", url, "job-9999",
            ]) == 1, "404 from the service maps to exit code 1"
        finally:
            service.wait_idle(timeout=30.0)
            service.stop()

    def test_unreachable_service_is_exit_2(self, capsys):
        assert main([
            "-q", "job", "list", "--url", "http://127.0.0.1:9",
        ]) == 2
