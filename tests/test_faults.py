"""Tests for the fault-injection layer (repro.faults) and its wiring.

Covers the three failure modes (lost cancellations, delayed
cancellations, scheduler outages), the coordinator's recovery policies,
the scheduler down/up state machine, and the strict no-op guarantee:
with faults disabled the simulator is bit-identical to the fault-free
code path, serial or parallel.
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster.platform import Platform
from repro.core.config import ExperimentConfig
from repro.core.coordinator import Coordinator
from repro.core.experiment import run_single
from repro.core.parallel import run_grid
from repro.faults import FaultConfig, FaultInjector
from repro.sched.base import SchedulerDownError, SchedulerError
from repro.sched.job import Request, RequestState
from repro.sim.engine import Simulator
from repro.workload.stream import StreamJob


def job(origin=0, arrival=0.0, nodes=4, runtime=10.0, requested=None,
        redundant=True):
    return StreamJob(
        origin=origin,
        arrival=arrival,
        nodes=nodes,
        runtime=runtime,
        requested_time=requested if requested is not None else runtime,
        uses_redundancy=redundant,
    )


def request(nodes=4, runtime=10.0):
    return Request(nodes=nodes, runtime=runtime, requested_time=runtime)


def injector(**fault_kw):
    return FaultInjector(FaultConfig(**fault_kw), np.random.default_rng(7))


def tiny(**kw):
    defaults = dict(
        n_clusters=4, nodes_per_cluster=16, duration=300.0,
        offered_load=2.0, drain=True, seed=8,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


def strip_wall(result):
    d = dataclasses.asdict(result)
    d.pop("wall_time_s")
    d.pop("phase_timings")
    return d


class TestFaultConfig:
    def test_defaults_disabled(self):
        cfg = FaultConfig()
        assert not cfg.enabled

    @pytest.mark.parametrize("kw", [
        dict(p_cancel_loss=0.1),
        dict(cancel_delay_mean=5.0),
        dict(outage_rate=1.0),
    ])
    def test_any_knob_enables(self, kw):
        assert FaultConfig(**kw).enabled

    @pytest.mark.parametrize("kw", [
        dict(p_cancel_loss=-0.1),
        dict(p_cancel_loss=1.5),
        dict(cancel_delay_mean=-1.0),
        dict(cancel_delay_distribution="gaussian"),
        dict(outage_rate=-1.0),
        dict(outage_duration=0.0),
        dict(resubmit_policy="retry-forever"),
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            FaultConfig(**kw)


class TestFaultInjector:
    def test_cancel_loss_draws(self):
        assert not injector().cancel_lost()
        always = injector(p_cancel_loss=1.0)
        assert all(always.cancel_lost() for _ in range(20))

    def test_fixed_delay_is_the_mean(self):
        inj = injector(cancel_delay_mean=3.0,
                       cancel_delay_distribution="fixed")
        assert inj.has_cancel_delay
        assert inj.draw_cancel_delay() == 3.0

    def test_uniform_delay_bounded(self):
        inj = injector(cancel_delay_mean=5.0,
                       cancel_delay_distribution="uniform")
        draws = [inj.draw_cancel_delay() for _ in range(200)]
        assert all(0.0 <= d <= 10.0 for d in draws)

    def test_exponential_delay_nonnegative(self):
        inj = injector(cancel_delay_mean=5.0)
        assert all(inj.draw_cancel_delay() >= 0.0 for _ in range(100))

    def test_outage_windows_disjoint_and_within_horizon(self):
        inj = injector(outage_rate=30.0, outage_duration=60.0)
        windows = inj.generate_outage_windows(4, horizon=3600.0)
        assert len(windows) == 4
        assert any(windows), "30/h over an hour should draw some outage"
        for cluster_windows in windows:
            prev_end = 0.0
            for start, end in cluster_windows:
                assert prev_end <= start < 3600.0
                assert end > start
                prev_end = end

    def test_zero_rate_draws_nothing(self):
        inj = injector(cancel_delay_mean=1.0)  # enabled, rate 0
        assert inj.generate_outage_windows(3, 3600.0) == [[], [], []]

    def test_windows_deterministic_per_seed(self):
        cfg = FaultConfig(outage_rate=10.0)
        a = FaultInjector(cfg, np.random.default_rng(3))
        b = FaultInjector(cfg, np.random.default_rng(3))
        assert (a.generate_outage_windows(5, 3600.0)
                == b.generate_outage_windows(5, 3600.0))

    def test_earliest_recovery(self):
        inj = injector(outage_rate=1.0)
        inj.windows = [[(10.0, 20.0)], [(5.0, 30.0)], []]
        assert inj.earliest_recovery([0, 1], now=12.0) == 20.0
        assert inj.earliest_recovery([1], now=12.0) == 30.0
        assert inj.earliest_recovery([2], now=12.0) is None
        assert inj.earliest_recovery([0], now=25.0) is None


class TestSchedulerOutageState:
    def test_down_rejects_and_drop_loses_queue(self):
        sim = Simulator()
        platform = Platform(sim, [8], algorithm="easy")
        sched = platform.schedulers[0]
        r1 = request()
        sched.submit(r1)
        dropped = sched.go_down(drop_queue=True)
        assert dropped == [r1]
        assert r1.state is RequestState.CANCELLED
        assert sched.stats.dropped == 1
        assert sched.queue_length == 0
        with pytest.raises(SchedulerDownError):
            sched.submit(request())
        with pytest.raises(SchedulerError):
            sched.go_down()
        sched.come_up()
        with pytest.raises(SchedulerError):
            sched.come_up()
        r2 = request()
        sched.submit(r2)
        sim.run()
        assert r2.state is RequestState.COMPLETED

    def test_down_without_drop_keeps_queue(self):
        sim = Simulator()
        platform = Platform(sim, [8], algorithm="easy")
        sched = platform.schedulers[0]
        r1 = request()
        sched.submit(r1)
        assert sched.go_down(drop_queue=False) == []
        assert r1.state is RequestState.PENDING
        with pytest.raises(SchedulerDownError):
            sched.cancel(r1)
        sched.cancel(r1, force=True)  # the operator purge still works
        assert r1.state is RequestState.CANCELLED

    def test_no_scheduling_while_down(self):
        sim = Simulator()
        platform = Platform(sim, [8], algorithm="easy")
        sched = platform.schedulers[0]
        r1 = request()
        sched.submit(r1)
        sched.go_down()
        sim.run()
        assert r1.state is RequestState.PENDING, "downed daemon must not start work"
        sched.come_up()
        sim.run()
        assert r1.state is RequestState.COMPLETED


class TestLostCancellations:
    def test_orphan_runs_as_waste(self):
        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        coord = Coordinator(
            sim, platform, fault_injector=injector(p_cancel_loss=1.0)
        )
        blocker = job(origin=1, nodes=8, runtime=5.0, redundant=False)
        coord.schedule_job(blocker, [1])
        j = job(origin=0, nodes=8, runtime=10.0)
        coord.schedule_job(j, [0, 1])
        sim.run()
        rj = coord.jobs[1]
        assert rj.winner.cluster.cluster.index == 0
        assert coord.lost_cancellations == 1
        assert coord.total_cancellations == 0
        [orphan] = coord.duplicate_starts
        assert orphan.state is RequestState.COMPLETED
        assert coord.wasted_node_seconds(sim.now) == pytest.approx(80.0)
        coord.check_invariants()

    def test_zero_probability_never_loses(self):
        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        coord = Coordinator(
            sim, platform, fault_injector=injector(p_cancel_loss=0.0,
                                                   outage_rate=1.0)
        )
        coord.schedule_job(job(origin=0, nodes=8), [0, 1])
        sim.run()
        assert coord.lost_cancellations == 0
        assert coord.total_cancellations == 1


class TestDelayedCancellations:
    def test_fixed_delay_cancels_at_start_plus_delay(self):
        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        coord = Coordinator(
            sim, platform,
            fault_injector=injector(cancel_delay_mean=3.0,
                                    cancel_delay_distribution="fixed"),
        )
        blocker = job(origin=1, nodes=8, runtime=50.0, redundant=False)
        coord.schedule_job(blocker, [1])
        coord.schedule_job(job(origin=0, nodes=8, arrival=1.0), [0, 1])
        sim.run()
        loser = coord.jobs[1].requests[1]
        assert loser.state is RequestState.CANCELLED
        assert loser.cancelled_at == pytest.approx(4.0)  # start 1.0 + 3.0

    def test_sibling_racing_its_cancellation_is_waste(self):
        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        coord = Coordinator(
            sim, platform,
            fault_injector=injector(cancel_delay_mean=5.0,
                                    cancel_delay_distribution="fixed"),
        )
        # Cluster 1 frees up at t=2, inside the 5 s cancellation window.
        blocker = job(origin=1, nodes=8, runtime=2.0, redundant=False)
        coord.schedule_job(blocker, [1])
        coord.schedule_job(job(origin=0, nodes=8, runtime=10.0), [0, 1])
        sim.run()
        assert len(coord.duplicate_starts) == 1
        assert coord.wasted_node_seconds(sim.now) == pytest.approx(80.0)
        coord.check_invariants()


class TestOutageRecovery:
    def _outage(self, policy, drop=True, window=(1.0, 4.0)):
        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        inj = injector(outage_rate=1.0, outage_drop_queue=drop,
                       resubmit_policy=policy)
        coord = Coordinator(sim, platform, fault_injector=inj)
        inj.generate_outage_windows = lambda n, h: [[window], []]
        inj.install(sim, platform, coord, horizon=10.0)
        return sim, platform, coord

    def test_dropped_copy_resubmitted_at_recovery(self):
        sim, platform, coord = self._outage("resubmit")
        # Keep cluster 0 busy so the job is still pending when the
        # outage at t=1 drops the queue.
        blocker = job(origin=0, nodes=8, runtime=6.0, redundant=False)
        coord.schedule_job(blocker, [0])
        coord.schedule_job(
            job(origin=0, arrival=0.5, nodes=8, runtime=2.0, redundant=False),
            [0],
        )
        sim.run()
        rj = coord.jobs[1]
        assert coord.resubmissions == 1
        assert platform.schedulers[0].stats.dropped == 1
        assert rj.completed
        assert rj.winner.start_time == pytest.approx(6.0)

    def test_abandon_policy_gives_up_the_job(self):
        sim, platform, coord = self._outage("abandon")
        blocker = job(origin=0, nodes=8, runtime=6.0, redundant=False)
        coord.schedule_job(blocker, [0])
        coord.schedule_job(
            job(origin=0, arrival=0.5, nodes=8, runtime=2.0, redundant=False),
            [0],
        )
        sim.run()
        assert coord.resubmissions == 0
        assert not coord.jobs[1].completed
        assert coord.abandoned_jobs() == 1

    def test_submission_during_outage_retried_at_recovery(self):
        sim, platform, coord = self._outage("resubmit", drop=False)
        # Arrives at t=2, mid-outage: the submit is rejected, retried at
        # t=4 when the scheduler recovers.
        coord.schedule_job(
            job(origin=0, arrival=2.0, nodes=8, runtime=3.0, redundant=False),
            [0],
        )
        sim.run()
        rj = coord.jobs[0]
        assert coord.failed_submissions == 1
        assert coord.resubmissions == 1
        assert rj.completed
        assert rj.winner.start_time == pytest.approx(4.0)

    def test_subset_of_targets_down_does_not_sink_the_job(self):
        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        coord = Coordinator(sim, platform)  # no injector: pure abandon
        platform.schedulers[1].go_down()
        rj = coord.submit_job(job(origin=0, nodes=8), [0, 1])
        sim.run()
        assert coord.failed_submissions == 1
        assert rj.n_copies == 1
        assert rj.completed

    def test_all_targets_down_abandons(self):
        sim = Simulator()
        platform = Platform(sim, [8], algorithm="easy")
        coord = Coordinator(sim, platform)
        platform.schedulers[0].go_down()
        coord.submit_job(job(origin=0, redundant=False), [0])
        sim.run()
        assert coord.abandoned_jobs() == 1
        assert coord.unfinished_jobs() != []


class TestEndToEnd:
    def test_disabled_faults_bit_identical_to_none(self):
        """The acceptance criterion: a present-but-disabled fault config
        is a strict no-op down to the last bit."""
        plain = run_single(tiny(scheme="ALL"), 0)
        gated = run_single(tiny(scheme="ALL", faults=FaultConfig()), 0)
        assert strip_wall(plain) == strip_wall(gated)
        assert gated.lost_cancellations == 0
        assert gated.wasted_node_seconds == 0.0

    def test_lost_cancellations_surface_in_results(self):
        cfg = tiny(scheme="ALL", faults=FaultConfig(p_cancel_loss=1.0))
        result = run_single(cfg, 0, check_invariants=True)
        assert result.lost_cancellations > 0
        assert result.wasted_node_seconds > 0
        assert 0.0 < result.wasted_work_fraction < 1.0

    def test_outages_surface_in_results(self):
        cfg = tiny(scheme="R2", faults=FaultConfig(
            outage_rate=40.0, outage_duration=30.0,
            outage_drop_queue=True, resubmit_policy="resubmit",
        ))
        result = run_single(cfg, 0, check_invariants=True)
        assert result.outages > 0
        assert result.dropped_requests > 0

    def test_fault_runs_deterministic_serial_vs_parallel(self):
        cfg = tiny(scheme="ALL", faults=FaultConfig(
            p_cancel_loss=0.3, cancel_delay_mean=5.0,
            outage_rate=10.0, outage_duration=60.0,
            outage_drop_queue=True,
        ))
        serial = run_grid([cfg, tiny(scheme="R2")], 2, n_workers=1)
        parallel = run_grid([cfg, tiny(scheme="R2")], 2, n_workers=2)
        for s_cfg, p_cfg in zip(serial, parallel):
            assert [strip_wall(r) for r in s_cfg] == [
                strip_wall(r) for r in p_cfg
            ]

    def test_fault_config_changes_fingerprint(self):
        from repro.core.cache import config_fingerprint

        assert config_fingerprint(tiny()) != config_fingerprint(
            tiny(faults=FaultConfig(p_cancel_loss=0.1))
        )

    def test_describe_mentions_enabled_faults_only(self):
        assert "faults" not in tiny().describe()
        assert "faults" not in tiny(faults=FaultConfig()).describe()
        desc = tiny(faults=FaultConfig(p_cancel_loss=0.25,
                                       outage_rate=2.0)).describe()
        assert "p_loss=0.25" in desc and "outage=2/h" in desc
