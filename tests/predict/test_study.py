"""Tests for the Table 4 study harness."""

import pytest

from repro.predict.study import run_table4_study


@pytest.fixture(scope="module")
def study():
    return run_table4_study(
        n_clusters=4, duration=900.0, n_replications=2, seed=3
    )


class TestTable4Study:
    def test_three_rows(self, study):
        rows = study.rows()
        assert len(rows) == 3
        assert all(r.stats.count > 0 for r in rows)

    def test_baseline_overpredicts(self, study):
        """CBF + φ estimates over-predict even without redundancy
        (the paper's 9.24x; magnitude is regime-dependent)."""
        assert study.baseline.stats.mean_ratio > 1.5

    def test_redundancy_degrades_predictions(self, study):
        """Both populations see worse over-prediction under churn."""
        assert study.degradation_non_redundant > 1.0
        assert study.degradation_redundant > 1.0

    def test_min_prediction_used_for_redundant_jobs(self, study):
        # The redundant population uses min-over-copies predictions;
        # the stats must still be finite and positive.
        assert study.redundant.stats.mean_ratio > 0
