"""Tests for prediction-accuracy statistics."""

import math

import numpy as np
import pytest

from repro.core.results import JobOutcome
from repro.predict.stats import (
    OverestimationStats,
    overestimation_stats,
    prediction_ratios,
)


def job(wait=10.0, pred_local=None, pred_min=None, redundant=False):
    return JobOutcome(
        job_id=0, origin=0, winner_cluster=0, nodes=1,
        runtime=5.0, requested_time=5.0,
        submit_time=0.0, start_time=wait, end_time=wait + 5.0,
        uses_redundancy=redundant, n_copies=1,
        predicted_wait_local=pred_local, predicted_wait_min=pred_min,
    )


class TestPredictionRatios:
    def test_local_ratios(self):
        jobs = [job(wait=10.0, pred_local=30.0), job(wait=5.0, pred_local=5.0)]
        r = prediction_ratios(jobs, "local")
        assert list(r) == [3.0, 1.0]

    def test_min_ratios(self):
        jobs = [job(wait=10.0, pred_local=30.0, pred_min=20.0)]
        assert list(prediction_ratios(jobs, "min")) == [2.0]

    def test_missing_predictions_skipped(self):
        jobs = [job(wait=10.0), job(wait=10.0, pred_local=20.0)]
        assert len(prediction_ratios(jobs, "local")) == 1

    def test_zero_wait_excluded(self):
        jobs = [job(wait=0.0, pred_local=10.0), job(wait=10.0, pred_local=10.0)]
        assert list(prediction_ratios(jobs, "local")) == [1.0]

    def test_min_wait_threshold(self):
        jobs = [job(wait=0.5, pred_local=1.0)]
        assert len(prediction_ratios(jobs, "local", min_wait=1.0)) == 0
        assert len(prediction_ratios(jobs, "local", min_wait=0.1)) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            prediction_ratios([job()], "median")  # type: ignore[arg-type]


class TestStats:
    def test_aggregate(self):
        jobs = [job(wait=10.0, pred_local=10.0 * k) for k in (1, 2, 3)]
        s = overestimation_stats(jobs, "local")
        assert s.count == 3
        assert s.mean_ratio == pytest.approx(2.0)
        assert s.median_ratio == pytest.approx(2.0)
        assert s.cv_percent == pytest.approx(
            100 * np.std([1, 2, 3]) / 2.0
        )

    def test_empty_stats_nan(self):
        s = OverestimationStats.of(np.array([]))
        assert s.count == 0
        assert math.isnan(s.mean_ratio)
