"""Tests for the binomial-method quantile predictor."""

import numpy as np
import pytest

from repro.predict.binomial import (
    BinomialQuantilePredictor,
    binomial_bound_index,
    evaluate_predictor,
)


class TestBoundIndex:
    def test_insufficient_history_returns_none(self):
        assert binomial_bound_index(1, 0.95, 0.95) is None
        assert binomial_bound_index(0, 0.95, 0.95) is None

    def test_known_small_case(self):
        """For the median with 95% confidence and n=10, the binomial CDF
        first reaches 0.95 at k=9: P[Bin(10,0.5) < 9] ≈ 0.989."""
        k = binomial_bound_index(10, 0.5, 0.95)
        assert k == 9

    def test_monotone_in_quantile(self):
        k_lo = binomial_bound_index(100, 0.5, 0.9)
        k_hi = binomial_bound_index(100, 0.9, 0.9)
        assert k_hi > k_lo

    def test_monotone_in_confidence(self):
        k_lo = binomial_bound_index(100, 0.5, 0.5)
        k_hi = binomial_bound_index(100, 0.5, 0.99)
        assert k_hi > k_lo

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            binomial_bound_index(10, 0.0, 0.9)
        with pytest.raises(ValueError):
            binomial_bound_index(10, 0.9, 1.0)


class TestPredictor:
    def test_no_prediction_without_history(self):
        p = BinomialQuantilePredictor()
        assert p.predict() is None

    def test_window_rolls(self):
        p = BinomialQuantilePredictor(window=5)
        for w in range(10):
            p.observe(float(w))
        assert p.history_length == 5

    def test_prediction_is_order_statistic(self):
        p = BinomialQuantilePredictor(quantile=0.5, confidence=0.9, window=100)
        for w in np.linspace(1, 100, 100):
            p.observe(float(w))
        bound = p.predict()
        assert bound is not None
        assert 50.0 <= bound <= 100.0  # above the median, within range

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError):
            BinomialQuantilePredictor().observe(-1.0)


class TestCoverage:
    def test_calibrated_on_iid_data(self):
        """On exchangeable data the bound covers ~quantile of outcomes."""
        rng = np.random.default_rng(0)
        waits = rng.exponential(100.0, size=4000)
        report = evaluate_predictor(waits, quantile=0.9, confidence=0.9,
                                    window=300)
        assert report.n_predictions > 3000
        assert report.coverage >= 0.87

    def test_coverage_drops_under_regime_change(self):
        """A sudden wait-time regime shift (what redundancy churn causes)
        degrades coverage until the window refills."""
        rng = np.random.default_rng(1)
        calm = rng.exponential(10.0, size=500)
        stormy = rng.exponential(400.0, size=200)
        report = evaluate_predictor(
            np.concatenate([calm, stormy]), quantile=0.9, confidence=0.9,
            window=400,
        )
        calm_only = evaluate_predictor(calm, quantile=0.9, confidence=0.9,
                                       window=400)
        assert report.coverage < calm_only.coverage

    def test_empty_report(self):
        report = evaluate_predictor([], quantile=0.9, confidence=0.9)
        assert report.n_predictions == 0
