"""Tests for the Chrome trace_event exporter, including a golden file."""

import json
from pathlib import Path

from repro.obs.chrome import export_chrome, to_chrome_trace
from repro.obs.trace import run_single_traced

GOLDEN = Path(__file__).parent / "data" / "chrome_golden.json"


def ev(t, etype, cluster, request=-1, job=-1, config=0, rep=0, scheme="R2"):
    return {"t": t, "type": etype, "cluster": cluster, "request": request,
            "job": job, "config": config, "rep": rep, "scheme": scheme}


#: a tiny hand-written lifecycle: one redundant job, copy on cluster 1
#: wins, the queued copy on cluster 0 is cancelled; an outage blips.
FIXTURE_EVENTS = [
    ev(0.0, "submit", 0, request=1, job=0),
    ev(0.0, "queue", 0, request=1, job=0),
    ev(0.0, "submit", 1, request=2, job=0),
    ev(0.0, "queue", 1, request=2, job=0),
    ev(2.0, "start", 1, request=2, job=0),
    ev(2.0, "cancel_sent", 0, request=1, job=0),
    ev(2.5, "cancel_applied", 0, request=1, job=0),
    ev(4.0, "outage_down", 0),
    ev(6.0, "outage_up", 0),
    ev(12.0, "complete", 1, request=2, job=0),
]


class TestConversion:
    def test_span_pairing(self):
        doc = to_chrome_trace(FIXTURE_EVENTS)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = sorted(s["name"] for s in spans)
        assert names == [
            "queued req 1 (cancelled)", "queued req 2", "running req 2",
        ]
        running = next(s for s in spans if s["name"] == "running req 2")
        assert running["ts"] == 2.0 * 1e6
        assert running["dur"] == 10.0 * 1e6

    def test_instants_and_metadata(self):
        doc = to_chrome_trace(FIXTURE_EVENTS)
        instants = {e["name"] for e in doc["traceEvents"] if e["ph"] == "i"}
        assert {"submit", "cancel_sent", "cancel_applied",
                "outage_down", "outage_up"} <= instants
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        assert "cfg0 rep0 cluster0 [R2]" in process_names
        assert "cfg0 rep0 cluster1 [R2]" in process_names
        # Every process row carries a sort index, every thread a name.
        sort_indices = [e for e in meta if e["name"] == "process_sort_index"]
        assert {e["pid"] for e in sort_indices} == {1, 2}
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in meta if e["name"] == "thread_name"
        }
        assert thread_names  # job 0 rows on both clusters
        assert all(
            name == ("cluster" if tid == 0 else f"job {tid}")
            for (_, tid), name in thread_names.items()
        )

    def test_pid_assignment_stable_under_reordering(self):
        """pids come from the sorted key set, not first-seen order."""
        doc_fwd = to_chrome_trace(FIXTURE_EVENTS)
        doc_rev = to_chrome_trace(list(reversed(FIXTURE_EVENTS)))

        def pid_names(doc):
            return {
                e["pid"]: e["args"]["name"]
                for e in doc["traceEvents"] if e["name"] == "process_name"
            }

        assert pid_names(doc_fwd) == pid_names(doc_rev)

    def test_truncated_spans_flushed(self):
        doc = to_chrome_trace(FIXTURE_EVENTS[:5])  # no complete/cancel
        truncated = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["args"].get("truncated")
        ]
        # req 1 still queued, req 2 still running at the cut
        assert len(truncated) == 2

    def test_real_trace_is_valid_chrome_json(self, tmp_path):
        from repro.core.config import ExperimentConfig
        from repro.obs.trace import _event_record

        cfg = ExperimentConfig(
            scheme="R2", n_clusters=2, nodes_per_cluster=16,
            duration=200.0, drain=True, seed=3,
        )
        traced = run_single_traced(cfg)
        events = [_event_record(e, 0, 0, cfg.scheme) for e in traced.events]
        path = export_chrome(events, tmp_path / "out.json")
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        for entry in doc["traceEvents"]:
            assert entry["ph"] in ("X", "i", "M")
            if entry["ph"] == "X":
                assert entry["dur"] >= 0.0


class TestGoldenFile:
    def test_export_matches_golden(self, tmp_path):
        """Byte-exact lock on the exporter's output format.

        Regenerate after an intentional format change with::

            PYTHONPATH=src python -c "
            from tests.obs.test_chrome import regenerate_golden
            regenerate_golden()"
        """
        out = export_chrome(FIXTURE_EVENTS, tmp_path / "chrome.json")
        assert out.read_bytes() == GOLDEN.read_bytes()


def regenerate_golden() -> None:  # pragma: no cover - maintenance hook
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    export_chrome(FIXTURE_EVENTS, GOLDEN)
