"""Tests for the metrics registry and result aggregation."""

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import run_single
from repro.obs.metrics import (
    RUN_COUNTER_NAMES,
    MetricsRegistry,
    aggregate_results,
    run_counters,
)


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter("a") == 5
        assert reg.counter("missing") == 0

    def test_gauges_last_value_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1)
        reg.set_gauge("g", 9)
        assert reg.gauge("g") == 9

    def test_timer_accumulates(self):
        reg = MetricsRegistry()
        with reg.timer("phase"):
            pass
        with reg.timer("phase"):
            pass
        assert reg.timing("phase") >= 0.0
        assert "phase" in reg.snapshot()["timings_s"]

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x", 1)
        b.inc("x", 2)
        b.add_time("t", 0.5)
        b.set_gauge("g", 3)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["x"] == 3
        assert snap["timings_s"]["t"] == pytest.approx(0.5)
        assert snap["gauges"]["g"] == 3

    def test_snapshot_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.inc("zeta")
        reg.inc("alpha")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["alpha", "zeta"]
        json.dumps(snap)  # must not raise


class TestRunCounters:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = ExperimentConfig(
            scheme="ALL", n_clusters=3, nodes_per_cluster=16,
            duration=300.0, drain=True, seed=11,
        )
        return run_single(cfg)

    def test_all_standard_names_present(self, result):
        counters = run_counters(result)
        assert set(counters) == set(RUN_COUNTER_NAMES)

    def test_values_mirror_result(self, result):
        counters = run_counters(result)
        assert counters["submissions"] == result.total_requests
        assert counters["cancellations"] == result.total_cancellations
        assert counters["backfills"] == result.total_backfills
        assert counters["events_executed"] == result.events_executed > 0

    def test_aggregate_sums_and_counts_runs(self, result):
        reg = aggregate_results([result, result])
        snap = reg.snapshot()
        assert snap["counters"]["runs"] == 2
        assert snap["counters"]["submissions"] == 2 * result.total_requests
        # phase timings fold in too
        assert snap["timings_s"]["simulate_s"] > 0.0


class TestEngineMetrics:
    def test_run_grid_reports_cache_accounting(self, tmp_path):
        from repro.core.cache import ResultCache
        from repro.core.parallel import run_grid

        cfg = ExperimentConfig(
            scheme="R2", n_clusters=2, nodes_per_cluster=16,
            duration=200.0, drain=True, seed=5,
        )
        cache = ResultCache(tmp_path)
        cold = MetricsRegistry()
        run_grid([cfg], 2, cache=cache, metrics=cold)
        assert cold.counter("cache_misses") == 2
        assert cold.counter("tasks_executed") == 2
        assert cold.timing("cache_store_s") >= 0.0

        warm = MetricsRegistry()
        run_grid([cfg], 2, cache=cache, metrics=warm)
        assert warm.counter("cache_hits") == 2
        assert warm.counter("tasks_executed") == 0
