"""Tests for run manifests."""

import json

import pytest

from repro.core.cache import CACHE_SCHEMA_VERSION, config_fingerprint
from repro.core.config import ExperimentConfig
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    build_manifest,
    describe_config,
)


def cfg(**overrides):
    defaults = dict(scheme="R2", n_clusters=3, duration=300.0, seed=7)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestBuild:
    def test_records_environment_and_configs(self):
        m = build_manifest([cfg(), cfg(scheme="ALL")], n_replications=5,
                           n_workers=4, wall_time_s=1.5)
        assert m.schema == MANIFEST_SCHEMA_VERSION
        assert m.cache_schema_version == CACHE_SCHEMA_VERSION
        assert m.python and m.platform and m.rng_derivation
        assert m.n_replications == 5 and m.n_workers == 4
        assert [c["scheme"] for c in m.configs] == ["R2", "ALL"]
        assert m.configs[0]["fingerprint"] == config_fingerprint(cfg())

    def test_describe_config(self):
        d = describe_config(cfg(), index=3)
        assert d["index"] == 3
        assert d["scheme"] == "R2"
        assert d["seed"] == 7
        assert len(d["fingerprint"]) == 64  # sha256 hex


class TestRoundTrip:
    def test_write_load(self, tmp_path):
        m = build_manifest([cfg()], n_replications=2,
                           command=["repro", "trace", "record"],
                           extra={"n_trace_events": 10})
        path = m.write(tmp_path / "manifest.json")
        loaded = RunManifest.load(path)
        assert loaded == m

    def test_dict_carries_kind(self):
        m = build_manifest([cfg()], n_replications=1)
        d = m.to_dict()
        assert d["kind"] == "repro-manifest"
        # JSON-serialisable end to end
        assert json.loads(m.to_json())["kind"] == "repro-manifest"

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError, match="not a repro manifest"):
            RunManifest.from_dict({"kind": "something-else"})

    def test_rejects_future_schema(self):
        m = build_manifest([cfg()], n_replications=1)
        payload = m.to_dict()
        payload["schema"] = 999
        with pytest.raises(ValueError, match="unsupported manifest schema"):
            RunManifest.from_dict(payload)
