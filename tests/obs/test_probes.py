"""Tests for the deterministic probe sampler and probed sweeps.

The three guarantees under test, in order of importance:

1. *Strict no-op when disabled* — a run without probes/online stats
   allocates no hooks and produces a bit-identical trajectory;
2. *Trajectory invariance when enabled* — probes add observation events
   but never change any job outcome;
3. *Worker invariance* — a probed sweep's JSONL is byte-identical for
   any ``--workers``.
"""

import dataclasses
import json
import math

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import run_single
from repro.obs.probes import (
    DEFAULT_PROBE_CADENCE,
    PROBE_SCHEMA_VERSION,
    ProbeSampler,
    probe_series,
    read_probes,
    record_probe_sweep,
    run_single_probed,
    summarize_probes,
    write_probes,
)


def small_config(**overrides):
    defaults = dict(
        scheme="R2", algorithm="easy", n_clusters=3, nodes_per_cluster=16,
        duration=300.0, drain=True, seed=42,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestDisabledIsStrictNoOp:
    def test_no_finish_hooks_without_online(self):
        """``online=False`` must not even allocate a callback entry."""
        from repro.cluster.platform import Platform
        from repro.core.coordinator import Coordinator
        from repro.sim.engine import Simulator

        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        Coordinator(sim, platform)
        assert all(s._finish_callbacks == [] for s in platform.schedulers)

    def test_online_registers_one_hook_per_scheduler(self):
        from repro.cluster.platform import Platform
        from repro.core.coordinator import Coordinator
        from repro.obs.stream import OnlineMetrics
        from repro.sim.engine import Simulator

        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        Coordinator(sim, platform, online=OnlineMetrics())
        assert all(
            len(s._finish_callbacks) == 1 for s in platform.schedulers
        )

    def test_disabled_run_is_bit_identical(self):
        cfg = small_config()
        with_online = run_single(cfg, 0)
        without = run_single(cfg, 0, online=False)
        assert without.online_metrics is None
        assert with_online.online_metrics is not None
        assert [dataclasses.astuple(j) for j in with_online.jobs] == [
            dataclasses.astuple(j) for j in without.jobs
        ]
        assert with_online.clusters == without.clusters
        assert with_online.events_executed == without.events_executed
        assert with_online.wasted_node_seconds == without.wasted_node_seconds


class TestProbedTrajectoryInvariance:
    def test_probes_do_not_change_outcomes(self):
        """Probe events interleave but every job outcome is identical."""
        cfg = small_config()
        plain = run_single(cfg, 0)
        probed = run_single_probed(cfg, 0, cadence=25.0)
        assert [dataclasses.astuple(j) for j in plain.jobs] == [
            dataclasses.astuple(j) for j in probed.result.jobs
        ]
        assert plain.clusters == probed.result.clusters
        assert plain.online_metrics == probed.result.online_metrics
        # The one permitted difference: the probe ticks themselves.
        assert probed.result.events_executed > plain.events_executed

    def test_rows_cover_every_cluster_at_cadence(self):
        cfg = small_config(duration=100.0)
        probed = run_single_probed(cfg, 0, cadence=10.0)
        times = sorted({row[0] for row in probed.cluster_rows})
        # Samples start at t=0 and step by the cadence while events
        # remain; the drain tail may extend past the window.
        assert times[0] == 0.0
        steps = {round(b - a, 9) for a, b in zip(times, times[1:])}
        assert steps == {10.0}
        for t in times:
            clusters = [r[1] for r in probed.cluster_rows if r[0] == t]
            assert clusters == [0, 1, 2]

    def test_sampler_stops_when_queue_drains(self):
        """The self-rescheduling tick must not keep an empty sim alive."""
        cfg = small_config(duration=60.0)
        probed = run_single_probed(cfg, 0, cadence=5.0)
        last_tick = max(row[0] for row in probed.kernel_rows)
        # Finite: the sampler observed the drain finishing and stopped.
        assert math.isfinite(last_tick)
        assert probed.cadence == 5.0

    def test_kernel_rows_track_waste(self):
        cfg = small_config(
            scheme="ALL", cancellation_latency=60.0, duration=200.0
        )
        probed = run_single_probed(cfg, 0, cadence=20.0)
        final_wasted = probed.kernel_rows[-1][2]
        assert final_wasted == pytest.approx(
            probed.result.wasted_node_seconds, rel=1e-9, abs=1e-6
        )


class TestJsonlRoundTrip:
    RECORDS = [
        {"t": 0.0, "config": 0, "rep": 0, "scheme": "R2", "cluster": 0,
         "queue_depth": 3, "busy_nodes": 8, "total_nodes": 16,
         "utilisation": 0.5},
        {"t": 0.0, "config": 0, "rep": 0, "scheme": "R2", "cluster": -1,
         "outstanding_duplicates": 1, "wasted_node_seconds": 0.0,
         "pending_events": 11, "events_executed": 4, "compactions": 0},
    ]

    def test_write_read(self, tmp_path):
        path = tmp_path / "p.jsonl"
        n = write_probes(path, {"note": "x"}, self.RECORDS)
        assert n == 2
        header, records = read_probes(path)
        assert header["kind"] == "repro-probes"
        assert header["schema"] == PROBE_SCHEMA_VERSION
        assert header["note"] == "x"
        assert records == self.RECORDS

    def test_read_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"hello": 1}\n')
        with pytest.raises(ValueError, match="not a repro probe"):
            read_probes(path)

    def test_read_rejects_future_schema(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text(
            json.dumps({"kind": "repro-probes", "schema": 999}) + "\n"
        )
        with pytest.raises(ValueError, match="unsupported probe schema"):
            read_probes(path)

    def test_series_and_summary(self):
        series = probe_series(self.RECORDS, "queue_depth", cluster=0)
        assert series == [(0.0, 3.0)]
        assert probe_series(self.RECORDS, "outstanding_duplicates") == [
            (0.0, 1.0)
        ]
        summary = summarize_probes(self.RECORDS)
        assert summary["n_records"] == 2
        assert summary["by_cluster"][0]["max_queue_depth"] == 3


class TestRecordSweepDeterminism:
    def test_parallel_probes_byte_identical_to_serial(self, tmp_path):
        """The headline guarantee: --workers N never changes the bytes."""
        cfgs = [small_config(scheme="R2"), small_config(scheme="R3")]
        record_probe_sweep(cfgs, 2, tmp_path / "serial",
                           cadence=50.0, n_workers=1)
        record_probe_sweep(cfgs, 2, tmp_path / "parallel",
                           cadence=50.0, n_workers=2)
        serial = (tmp_path / "serial" / "probes.jsonl").read_bytes()
        parallel = (tmp_path / "parallel" / "probes.jsonl").read_bytes()
        assert serial == parallel

    def test_manifest_records_observability_provenance(self, tmp_path):
        from repro.obs.stream import (
            ONLINE_ESTIMATORS,
            ONLINE_SCHEMA_VERSION,
        )

        _, manifest = record_probe_sweep(
            [small_config()], 1, tmp_path, cadence=75.0
        )
        assert manifest.online_schema_version == ONLINE_SCHEMA_VERSION
        assert manifest.extra["probe_cadence"] == 75.0
        assert manifest.extra["probe_schema"] == PROBE_SCHEMA_VERSION
        assert manifest.extra["online_estimators"] == list(ONLINE_ESTIMATORS)
        assert manifest.extra["n_probe_records"] > 0
        header, records = read_probes(tmp_path / "probes.jsonl")
        assert header["cadence"] == 75.0
        assert len(records) == manifest.extra["n_probe_records"]

    def test_default_cadence_is_sane(self):
        assert 0.0 < DEFAULT_PROBE_CADENCE <= 300.0

    def test_sampler_requires_positive_cadence(self):
        with pytest.raises(ValueError):
            ProbeSampler(0.0)
        with pytest.raises(ValueError):
            ProbeSampler(-1.0)
