"""Tests for the structured logging setup."""

import io
import logging

from repro.obs.log import (
    LOG_LEVEL_ENV,
    get_logger,
    setup_logging,
    setup_worker_logging,
    verbosity_to_level,
    worker_log_level,
)


class TestVerbosityMapping:
    def test_levels(self):
        assert verbosity_to_level(-1) == logging.WARNING
        assert verbosity_to_level(0) == logging.INFO
        assert verbosity_to_level(1) == logging.DEBUG
        assert verbosity_to_level(3) == logging.DEBUG


class TestSetup:
    def test_idempotent_single_handler(self):
        logger = setup_logging(0)
        setup_logging(1)
        setup_logging(0)
        tagged = [
            h for h in logger.handlers
            if getattr(h, "_repro_handler", False)
        ]
        assert len(tagged) == 1

    def test_namespaced_loggers_route_through_handler(self):
        buf = io.StringIO()
        setup_logging(0, stream=buf)
        get_logger("core.parallel").info("hello from the engine")
        out = buf.getvalue()
        assert "hello from the engine" in out
        assert "repro.core.parallel" in out

    def test_quiet_suppresses_info(self):
        buf = io.StringIO()
        setup_logging(-1, stream=buf)
        get_logger("cli").info("not shown")
        get_logger("cli").warning("shown")
        out = buf.getvalue()
        assert "not shown" not in out
        assert "shown" in out

    def test_level_exported_to_env(self, monkeypatch):
        monkeypatch.delenv(LOG_LEVEL_ENV, raising=False)
        setup_logging(1)
        import os

        assert os.environ[LOG_LEVEL_ENV] == "DEBUG"

    def test_stdout_untouched(self, capsys):
        setup_logging(0)
        get_logger("cli").info("diagnostics only")
        assert capsys.readouterr().out == ""


class TestWorkerLevel:
    def test_worker_level_from_env(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "DEBUG")
        assert worker_log_level() == logging.DEBUG

    def test_worker_level_default_quiet(self, monkeypatch):
        monkeypatch.delenv(LOG_LEVEL_ENV, raising=False)
        assert worker_log_level() == logging.WARNING

    def test_worker_level_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "NOT_A_LEVEL")
        assert worker_log_level() == logging.WARNING

    def test_setup_worker_logging(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "WARNING")
        setup_worker_logging()
        assert logging.getLogger("repro").level == logging.WARNING
