"""Tests for the lifecycle trace recorder and traced sweeps."""

import dataclasses
import json

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import run_single
from repro.obs.trace import (
    EVENT_TYPES,
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    filter_events,
    read_trace,
    record_sweep,
    run_single_traced,
    summarize_trace,
    write_trace,
)


def small_config(**overrides):
    defaults = dict(
        scheme="ALL", algorithm="easy", n_clusters=3, nodes_per_cluster=16,
        duration=300.0, drain=True, seed=42,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestRecorder:
    def test_emit_appends_tuples(self):
        rec = TraceRecorder()
        rec.emit(1.5, "submit", 0, 7, 3)
        rec.emit(2.0, "outage_down", 1)
        assert rec.events == [
            (1.5, "submit", 0, 7, 3),
            (2.0, "outage_down", 1, -1, -1),
        ]
        assert len(rec) == 2
        rec.clear()
        assert len(rec) == 0


class TestTracedRun:
    def test_events_cover_lifecycle(self):
        traced = run_single_traced(small_config())
        types = {e[1] for e in traced.events}
        assert {"submit", "queue", "start", "complete"} <= types
        # The ALL scheme cancels losers.
        assert "cancel_sent" in types and "cancel_applied" in types
        for e in traced.events:
            assert e[1] in EVENT_TYPES

    def test_event_counts_match_result(self):
        traced = run_single_traced(small_config())
        by_type = {}
        for e in traced.events:
            by_type[e[1]] = by_type.get(e[1], 0) + 1
        r = traced.result
        assert by_type["submit"] == r.total_requests
        assert by_type["queue"] == r.total_requests
        assert by_type["complete"] == sum(c.completed for c in r.clusters)
        assert by_type.get("cancel_applied", 0) == r.total_cancellations

    def test_tracing_does_not_change_results(self):
        """The strict no-op guarantee: traced == untraced trajectories."""
        cfg = small_config()
        plain = run_single(cfg, 0)
        traced = run_single_traced(cfg, 0).result
        assert [dataclasses.astuple(j) for j in plain.jobs] == [
            dataclasses.astuple(j) for j in traced.jobs
        ]
        assert plain.clusters == traced.clusters
        assert plain.total_cancellations == traced.total_cancellations

    def test_untraced_run_attaches_no_recorder(self):
        """run_single with the default tracer leaves every hook dark."""
        from repro.cluster.platform import Platform
        from repro.sim.engine import Simulator

        platform = Platform(Simulator(), [8], algorithm="easy")
        assert all(s.tracer is None for s in platform.schedulers)

    def test_outage_events_recorded(self):
        from repro.faults import FaultConfig

        cfg = small_config(
            faults=FaultConfig(outage_rate=24.0, outage_duration=30.0),
        )
        traced = run_single_traced(cfg)
        types = {e[1] for e in traced.events}
        if traced.result.outages:
            assert "outage_down" in types and "outage_up" in types


class TestJsonlRoundTrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [
            {"t": 0.0, "type": "submit", "cluster": 0, "request": 1,
             "job": 0, "config": 0, "rep": 0, "scheme": "R2"},
            {"t": 1.0, "type": "start", "cluster": 0, "request": 1,
             "job": 0, "config": 0, "rep": 0, "scheme": "R2"},
        ]
        n = write_trace(path, {"note": "x"}, records)
        assert n == 2
        header, events = read_trace(path)
        assert header["kind"] == "repro-trace"
        assert header["schema"] == TRACE_SCHEMA_VERSION
        assert header["note"] == "x"
        assert events == records

    def test_read_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"hello": 1}\n')
        with pytest.raises(ValueError, match="not a repro trace"):
            read_trace(path)

    def test_read_rejects_future_schema(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text(
            json.dumps({"kind": "repro-trace", "schema": 999}) + "\n"
        )
        with pytest.raises(ValueError, match="unsupported trace schema"):
            read_trace(path)

    def test_read_rejects_empty(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace(path)


class TestFilterAndSummary:
    EVENTS = [
        {"t": 0.0, "type": "submit", "cluster": 0, "request": 1, "job": 0,
         "config": 0, "rep": 0, "scheme": "R2"},
        {"t": 0.0, "type": "submit", "cluster": 1, "request": 2, "job": 0,
         "config": 0, "rep": 0, "scheme": "R2"},
        {"t": 5.0, "type": "start", "cluster": 1, "request": 2, "job": 0,
         "config": 0, "rep": 0, "scheme": "R2"},
        {"t": 5.0, "type": "cancel_sent", "cluster": 0, "request": 1,
         "job": 0, "config": 0, "rep": 1, "scheme": "R2"},
    ]

    def test_filter_by_type(self):
        got = list(filter_events(self.EVENTS, types=["submit"]))
        assert len(got) == 2

    def test_filter_by_cluster_and_time(self):
        got = list(filter_events(self.EVENTS, cluster=1, t_min=1.0))
        assert got == [self.EVENTS[2]]

    def test_filter_by_rep(self):
        got = list(filter_events(self.EVENTS, rep=1))
        assert got == [self.EVENTS[3]]

    def test_summary(self):
        s = summarize_trace(self.EVENTS)
        assert s["n_events"] == 4
        assert s["by_type"] == {"cancel_sent": 1, "start": 1, "submit": 2}
        assert s["n_jobs"] == 2  # (config 0, rep 0) and (config 0, rep 1)
        assert s["n_requests"] == 3
        assert s["t_first"] == 0.0 and s["t_last"] == 5.0


class TestRecordSweepDeterminism:
    def test_parallel_trace_byte_identical_to_serial(self, tmp_path):
        """The headline guarantee: --workers N never changes the bytes."""
        cfgs = [small_config(scheme="R2"), small_config(scheme="R3")]
        record_sweep(cfgs, 2, tmp_path / "serial", n_workers=1)
        record_sweep(cfgs, 2, tmp_path / "parallel", n_workers=2)
        serial = (tmp_path / "serial" / "trace.jsonl").read_bytes()
        parallel = (tmp_path / "parallel" / "trace.jsonl").read_bytes()
        assert serial == parallel

    def test_results_and_manifest(self, tmp_path):
        cfgs = [small_config(scheme="R2")]
        results, manifest = record_sweep(cfgs, 2, tmp_path)
        assert len(results) == 1 and len(results[0]) == 2
        assert (tmp_path / "trace.jsonl").exists()
        assert (tmp_path / "manifest.json").exists()
        assert manifest.n_replications == 2
        assert manifest.extra["n_trace_events"] > 0
        header, events = read_trace(tmp_path / "trace.jsonl")
        assert header["configs"][0]["scheme"] == "R2"
        assert len(events) == manifest.extra["n_trace_events"]

    def test_duplicate_configs_collapse(self, tmp_path):
        cfg = small_config(scheme="R2")
        results, manifest = record_sweep([cfg, cfg], 1, tmp_path)
        assert len(results) == 2
        assert results[0] == results[1]
        assert len(manifest.configs) == 1
