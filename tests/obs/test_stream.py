"""Online estimators: Welford exactness, P² accuracy bounds, merge laws.

The accuracy contract under test is the one documented in
:mod:`repro.obs.stream`: P² error is measured in *CDF space*
(``|F̂(q̂_p) − p|`` against the exact empirical CDF), IID
moderate-tailed streams of n ≥ 50 stay within 2/√n, the smoke experiment
grid stays within 0.15 for the median and 0.05 for p90/p99, and streams
shorter than five observations are exact.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left, bisect_right

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.stream import (
    ONLINE_METRIC_NAMES,
    ONLINE_QUANTILES,
    ONLINE_SCHEMA_VERSION,
    MergedOnlineMetrics,
    OnlineMetrics,
    P2Quantile,
    WelfordAccumulator,
    merge_online_payloads,
    quantile_label,
)

_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def cdf_error(values: list[float], estimate: float, p: float) -> float:
    """``|F̂(estimate) − p|``, zero if p falls inside a flat CDF step.

    The empirical CDF jumps at ties; an estimate sitting on a plateau
    is credited with the whole plateau's probability interval.
    """
    s = sorted(values)
    lo = bisect_left(s, estimate) / len(s)
    hi = bisect_right(s, estimate) / len(s)
    if lo <= p <= hi:
        return 0.0
    return min(abs(p - lo), abs(p - hi))


class TestQuantileLabel:
    def test_canonical_labels(self):
        assert quantile_label(0.5) == "p50"
        assert quantile_label(0.9) == "p90"
        assert quantile_label(0.99) == "p99"
        assert quantile_label(0.999) == "p99_9"


class TestWelford:
    @settings(max_examples=200, deadline=None)
    @given(xs=st.lists(_floats, min_size=1, max_size=200))
    def test_matches_numpy(self, xs):
        acc = WelfordAccumulator()
        for x in xs:
            acc.observe(x)
        arr = np.array(xs, dtype=float)
        assert acc.count == len(xs)
        assert acc.mean == pytest.approx(float(arr.mean()), rel=1e-9, abs=1e-6)
        assert acc.variance == pytest.approx(
            float(arr.var()), rel=1e-7, abs=1e-4
        )
        assert acc.minimum == float(arr.min())
        assert acc.maximum == float(arr.max())
        assert acc.total == pytest.approx(float(arr.sum()), rel=1e-9, abs=1e-6)

    @settings(max_examples=200, deadline=None)
    @given(
        xs=st.lists(_floats, min_size=0, max_size=100),
        ys=st.lists(_floats, min_size=0, max_size=100),
    )
    def test_merge_equals_sequential(self, xs, ys):
        """Chan's merge of two halves ≈ observing the concatenation."""
        left, right = WelfordAccumulator(), WelfordAccumulator()
        for x in xs:
            left.observe(x)
        for y in ys:
            right.observe(y)
        left.merge(right)
        seq = WelfordAccumulator()
        for x in xs + ys:
            seq.observe(x)
        assert left.count == seq.count
        if seq.count:
            assert left.mean == pytest.approx(seq.mean, rel=1e-9, abs=1e-6)
            assert left.variance == pytest.approx(
                seq.variance, rel=1e-6, abs=1e-3
            )
            assert left.minimum == seq.minimum
            assert left.maximum == seq.maximum

    def test_empty_is_nan(self):
        acc = WelfordAccumulator()
        assert math.isnan(acc.variance)
        assert math.isnan(acc.std)
        assert acc.count == 0 and acc.total == 0.0


class TestP2Quantile:
    def test_rejects_degenerate_p(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                P2Quantile(bad)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    @settings(max_examples=200, deadline=None)
    @given(
        xs=st.lists(_floats, min_size=1, max_size=4),
        p=st.sampled_from(ONLINE_QUANTILES),
    )
    def test_exact_below_five_observations(self, xs, p):
        """The warm-up buffer interpolates the true empirical quantile."""
        est = P2Quantile(p)
        for x in xs:
            est.observe(x)
        expected = float(np.quantile(np.array(xs, dtype=float), p))
        assert est.value == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @settings(max_examples=150, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=50, max_value=400),
        family=st.sampled_from(["uniform", "exponential", "normal"]),
        p=st.sampled_from(ONLINE_QUANTILES),
    )
    def test_cdf_error_bound_moderate_streams(self, seed, n, family, p):
        """Documented bound: CDF error ≤ 2/√n on IID moderate streams.

        The contract is about IID draws from well-behaved
        distributions (hypothesis picks the seed, size and family; the
        draws are numpy's), not arbitrary adversarial orderings — P²
        carries no distribution-free rank guarantee and the module
        docstring says so.
        """
        rng = np.random.default_rng(seed)
        if family == "uniform":
            xs = rng.uniform(0.0, 1000.0, n)
        elif family == "exponential":
            xs = rng.exponential(100.0, n)
        else:
            xs = rng.normal(0.0, 50.0, n)
        xs = [float(x) for x in xs]
        est = P2Quantile(p)
        for x in xs:
            est.observe(x)
        assert cdf_error(xs, est.value, p) <= 2.0 / math.sqrt(n)

    def test_tracks_a_long_heavy_stream(self):
        """Deterministic lognormal stream: all three quantiles in bound."""
        rng = np.random.default_rng(20060619)
        xs = list(rng.lognormal(mean=1.0, sigma=2.0, size=5000))
        for p in ONLINE_QUANTILES:
            est = P2Quantile(p)
            for x in xs:
                est.observe(x)
            assert cdf_error(xs, est.value, p) <= 0.06


def _payload_from(values: list[float]) -> dict:
    om = OnlineMetrics()
    for v in values:
        om.observe_completion(wait=v, stretch=v, slowdown=v)
        om.observe_waste(abs(v))
    return om.to_dict()


class TestOnlineMetrics:
    def test_payload_shape(self):
        payload = _payload_from([1.0, 2.0, 3.0])
        assert payload["schema"] == ONLINE_SCHEMA_VERSION
        assert tuple(payload["metrics"]) == ONLINE_METRIC_NAMES
        stretch = payload["metrics"]["stretch"]
        assert stretch["count"] == 3
        assert stretch["mean"] == pytest.approx(2.0)
        assert stretch["quantiles"]["p50"] == pytest.approx(2.0)

    def test_empty_serialises_none_not_nan(self):
        payload = OnlineMetrics().to_dict()
        stretch = payload["metrics"]["stretch"]
        assert stretch["count"] == 0
        assert stretch["mean"] is None
        assert stretch["min"] is None
        assert stretch["quantiles"]["p50"] is None
        # NaN would make this blow up; None round-trips.
        assert json.loads(json.dumps(payload, allow_nan=False)) == payload


class TestMergedOnlineMetrics:
    def test_rejects_wrong_schema(self):
        merged = MergedOnlineMetrics()
        with pytest.raises(ValueError, match="schema"):
            merged.add({"schema": ONLINE_SCHEMA_VERSION + 1, "metrics": {}})

    def test_none_parts_are_skipped(self):
        merged = MergedOnlineMetrics()
        merged.add(None)
        assert merged.n_runs == 0
        assert merged.summary() is None
        assert merge_online_payloads([None, None]) is None

    def test_count_and_total_sum_over_parts(self):
        merged = MergedOnlineMetrics()
        merged.add(_payload_from([1.0, 2.0]))
        merged.add(_payload_from([3.0]))
        assert merged.count("stretch") == 3
        assert merged.total("wasted_node_seconds") == pytest.approx(6.0)
        mean, var = merged.mean_variance("stretch")
        assert mean == pytest.approx(2.0)
        assert var == pytest.approx(np.var([1.0, 2.0, 3.0]))

    @settings(max_examples=100, deadline=None)
    @given(
        runs=st.lists(
            st.lists(_floats, min_size=0, max_size=40),
            min_size=3,
            max_size=6,
        ),
        split=st.integers(min_value=1, max_value=4),
    )
    def test_merge_is_exactly_associative(self, runs, split):
        """(a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) are bit-identical.

        This is the property that lets sweep workers reduce partial
        grids in any grouping: the merged aggregate depends only on the
        final part order, never on the merge tree.
        """
        payloads = [_payload_from(r) for r in runs]
        split = min(split, len(payloads) - 1)

        def reduction(groups):
            accs = []
            for group in groups:
                acc = MergedOnlineMetrics()
                for p in group:
                    acc.add(p)
                accs.append(acc)
            out = accs[0]
            for acc in accs[1:]:
                out.merge(acc)
            return out

        left = reduction([payloads[:split], payloads[split:]])
        right = reduction([payloads[:1], payloads[1:]])
        flat = reduction([payloads])
        assert left.parts == right.parts == flat.parts
        # Bitwise equality of every derived aggregate, not approx.
        assert left.summary() == right.summary() == flat.summary()

    def test_quantile_is_count_weighted(self):
        merged = MergedOnlineMetrics()
        merged.add(_payload_from([1.0]))
        merged.add(_payload_from([4.0, 4.0, 4.0]))
        # (1*1 + 3*4) / 4
        assert merged.quantile("stretch", 0.5) == pytest.approx(13.0 / 4.0)

    def test_summary_is_strict_json(self):
        merged = MergedOnlineMetrics()
        merged.add(_payload_from([]))
        merged.add(_payload_from([1.0, 5.0]))
        summary = merged.summary()
        assert summary["n_runs"] == 2
        assert json.loads(json.dumps(summary, allow_nan=False)) == summary


class TestSmokeGridAccuracy:
    """Acceptance gate: online quantiles vs exact post-hoc, real runs."""

    def test_online_stretch_quantiles_within_documented_bounds(self):
        from repro.core.config import ExperimentConfig
        from repro.core.experiment import run_single

        cfg = ExperimentConfig(
            scheme="R2", n_clusters=3, nodes_per_cluster=16,
            duration=900.0, offered_load=2.0, drain=True, seed=20060619,
        )
        result = run_single(cfg)
        stretches = list(result.stretches())
        assert len(stretches) >= 50  # the bound below presumes real data
        online = result.online_metrics["metrics"]["stretch"]
        assert online["count"] == len(stretches)
        bounds = {0.5: 0.15, 0.9: 0.05, 0.99: 0.05}
        for p, bound in bounds.items():
            estimate = online["quantiles"][quantile_label(p)]
            assert cdf_error(stretches, estimate, p) <= bound, (
                f"p={p}: estimate {estimate} breaches the documented "
                f"CDF-error bound {bound}"
            )

    def test_online_moments_exactly_match_post_hoc(self):
        from repro.core.config import ExperimentConfig
        from repro.core.experiment import run_single

        cfg = ExperimentConfig(
            scheme="HALF", n_clusters=2, nodes_per_cluster=16,
            duration=600.0, drain=True, seed=7,
        )
        result = run_single(cfg)
        stretches = result.stretches()
        online = result.online_metrics["metrics"]["stretch"]
        assert online["count"] == stretches.size
        assert online["mean"] == pytest.approx(
            float(stretches.mean()), rel=1e-9
        )
        waste = result.online_metrics["metrics"]["wasted_node_seconds"]
        assert waste["total"] == pytest.approx(
            result.wasted_node_seconds, rel=1e-9, abs=1e-9
        )
