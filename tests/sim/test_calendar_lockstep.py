"""Calendar queue vs binary heap: execution-order equivalence.

The calendar queue replaced the kernel's binary heap; its only contract
is that the global ``(time, priority, seq)`` execution order is
*exactly* the heap's, including same-time/same-priority ties,
tombstoned (cancelled) entries and compaction sweeps at arbitrary
points.  These tests drive both structures through identical
hypothesis-generated interleavings of push/pop/peek/cancel/compact and
assert they emit the same event sequence.

Events carry an owner backref (one queue at a time), so each logical
event exists as a twin pair — one instance per structure — with
identical ordering keys.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import calendar as calendar_mod
from repro.sim.calendar import CalendarQueue, COMPACT_MIN_TOMBSTONES
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventPriority
from repro.sim.heapref import BinaryHeapQueue


def _twin(time, priority, seq):
    """One logical event as a (calendar, heap) instance pair."""
    return (
        Event(time=time, priority=priority, seq=seq, callback=lambda: None),
        Event(time=time, priority=priority, seq=seq, callback=lambda: None),
    )


def _key(event):
    return (event.time, event.priority, event.seq)


# Operation stream: pushes draw times from a coarse grid (forcing
# same-bucket and exact same-time collisions) and priorities from the
# full enum (forcing priority and seq tie-breaks).
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.floats(min_value=0.0, max_value=200.0, allow_nan=False,
                      allow_infinity=False),
            st.sampled_from(list(EventPriority)),
        ),
        st.tuples(st.just("pop")),
        st.tuples(st.just("peek")),
        # Cancel the i-th pushed event (mod the live count at op time).
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("compact")),
    ),
    min_size=1,
    max_size=120,
)


class TestLockstep:
    @settings(max_examples=200, deadline=None)
    @given(ops=_ops, width=st.sampled_from([0.5, 16.0, 1e6]))
    def test_interleaved_ops_match_heap(self, ops, width):
        """Arbitrary push/pop/peek/cancel/compact interleavings agree.

        ``width`` sweeps the calendar's structural parameter across
        "many tiny buckets", the default, and "one giant bucket" — the
        docstring's claim that bucket width can never change execution
        order, tested rather than trusted.
        """
        cal = CalendarQueue(bucket_width=width)
        heap = BinaryHeapQueue()
        pushed: list[tuple[Event, Event]] = []
        seq = 0
        for op in ops:
            if op[0] == "push":
                _, time, priority = op
                twins = _twin(time, int(priority), seq)
                seq += 1
                pushed.append(twins)
                cal.push(twins[0])
                heap.push(twins[1])
            elif op[0] == "pop":
                a, b = cal.pop(), heap.pop()
                assert (a is None) == (b is None)
                if a is not None:
                    assert _key(a) == _key(b)
                    assert a.owner is None and b.owner is None
            elif op[0] == "peek":
                a, b = cal.peek(), heap.peek()
                assert (a is None) == (b is None)
                if a is not None:
                    assert _key(a) == _key(b)
            elif op[0] == "cancel":
                if pushed:
                    ev_c, ev_h = pushed[op[1] % len(pushed)]
                    # Event.cancel() routes through the owner backref —
                    # the unified accounting path, not Simulator.cancel.
                    ev_c.cancel()
                    ev_h.cancel()
            else:  # compact
                cal.compact()
                heap.compact()
        # Drain whatever is left: the full tail must agree too.
        while True:
            a, b = cal.pop(), heap.pop()
            assert (a is None) == (b is None)
            if a is None:
                break
            assert _key(a) == _key(b)
        assert len(cal) == 0 and len(heap) == 0

    def test_same_time_orders_by_priority_then_seq(self):
        """Explicit tie ladder: one instant, every priority, seq FIFO."""
        cal = CalendarQueue()
        seq = 0
        for priority in reversed(list(EventPriority)):  # worst-case insert order
            for _ in range(3):
                cal.push(Event(time=50.0, priority=int(priority), seq=seq,
                               callback=lambda: None))
                seq += 1
        got = []
        while (ev := cal.pop()) is not None:
            got.append((ev.priority, ev.seq))
        assert got == sorted(got)
        assert len(got) == len(EventPriority) * 3

    def test_bucket_boundary_does_not_reorder(self):
        """Events straddling a bucket edge still pop in time order."""
        width = calendar_mod.DEFAULT_BUCKET_WIDTH
        cal = CalendarQueue(bucket_width=width)
        times = [width - 1e-9, width, width + 1e-9, 2 * width, 0.0]
        for i, t in enumerate(times):
            cal.push(Event(time=t, priority=0, seq=i, callback=lambda: None))
        got = []
        while (ev := cal.pop()) is not None:
            got.append(ev.time)
        assert got == sorted(times)

    def test_invalid_bucket_width_rejected(self):
        with pytest.raises(ValueError):
            CalendarQueue(bucket_width=0.0)


class TestTombstoneAccounting:
    """Regression: direct ``Event.cancel()`` feeds compaction accounting.

    The pre-rewrite kernel only counted tombstones inside
    ``Simulator.cancel``; churn through ``Event.cancel()`` (the handle
    the schedulers hold) was invisible, so a queue full of dead events
    never triggered a purge.  Accounting now lives on the event side:
    ``Event.cancel()`` notifies the owning queue, making both paths one.
    """

    @pytest.mark.parametrize("factory", [CalendarQueue, BinaryHeapQueue])
    def test_direct_event_cancel_counts_tombstones(self, factory):
        q = factory()
        events = [
            Event(time=float(i), priority=0, seq=i, callback=lambda: None)
            for i in range(10)
        ]
        for ev in events:
            q.push(ev)
        for ev in events[:4]:
            ev.cancel()  # not Simulator.cancel — the once-untracked path
        assert q.tombstones == 4
        ev = q.pop()
        assert ev is events[4]  # tombstones silently skipped
        assert q.tombstones == 0  # all four discarded on the way out

    @pytest.mark.parametrize("factory", [CalendarQueue, BinaryHeapQueue])
    def test_direct_event_cancel_triggers_compaction(self, factory):
        q = factory()
        n = COMPACT_MIN_TOMBSTONES + 8
        events = [
            Event(time=float(i), priority=0, seq=i, callback=lambda: None)
            for i in range(n)
        ]
        for ev in events:
            q.push(ev)
        for ev in events:
            ev.cancel()
        # Tombstones came to dominate: the queue must have purged itself
        # without any Simulator involvement at all.
        assert q.compactions >= 1
        assert q.tombstones < COMPACT_MIN_TOMBSTONES
        assert len(q) < n

    def test_simulator_cancel_and_event_cancel_are_one_path(self):
        sim = Simulator()
        a = sim.at(5.0, lambda: None)
        b = sim.at(6.0, lambda: None)
        sim.cancel(a)
        b.cancel()
        assert sim._tombstones == 2
        # Idempotent from either side, counted once.
        sim.cancel(a)
        a.cancel()
        assert sim._tombstones == 2

    def test_cancel_after_pop_is_not_counted(self):
        q = CalendarQueue()
        ev = Event(time=1.0, priority=0, seq=0, callback=lambda: None)
        q.push(ev)
        assert q.pop() is ev
        ev.cancel()  # owner already detached: nothing to account
        assert q.tombstones == 0
