"""Tests for reproducible RNG stream management."""

import numpy as np
import pytest

from repro.sim.rng import RngFactory


class TestReproducibility:
    def test_same_seed_same_key_same_stream(self):
        a = RngFactory(42).generator("rep", 0, "workload")
        b = RngFactory(42).generator("rep", 0, "workload")
        assert np.allclose(a.random(100), b.random(100))

    def test_different_seeds_differ(self):
        a = RngFactory(1).generator("x")
        b = RngFactory(2).generator("x")
        assert not np.allclose(a.random(32), b.random(32))

    def test_different_keys_differ(self):
        f = RngFactory(7)
        a = f.generator("rep", 0)
        b = f.generator("rep", 1)
        assert not np.allclose(a.random(32), b.random(32))

    def test_key_order_matters(self):
        f = RngFactory(7)
        a = f.generator("a", "b")
        b = f.generator("b", "a")
        assert not np.allclose(a.random(32), b.random(32))

    def test_string_vs_int_keys_distinct(self):
        f = RngFactory(7)
        a = f.generator(1)
        b = f.generator("1")
        assert not np.allclose(a.random(32), b.random(32))


class TestCommonRandomNumbers:
    def test_stream_independent_of_other_draws(self):
        """Key-addressed streams do not depend on consumption elsewhere —
        the property the paired scheme comparisons rely on."""
        f1 = RngFactory(3)
        # Consume a lot from one stream first.
        f1.generator("other").random(1000)
        g1 = f1.generator("workload", 5)

        f2 = RngFactory(3)
        g2 = f2.generator("workload", 5)
        assert np.allclose(g1.random(64), g2.random(64))


class TestChildNamespaces:
    def test_child_prefixes_keys(self):
        f = RngFactory(9)
        child = f.child("rep", 3)
        direct = f.generator("rep", 3, "workload")
        namespaced = child.generator("workload")
        assert np.allclose(direct.random(16), namespaced.random(16))

    def test_child_preserves_master_seed(self):
        f = RngFactory(9)
        assert f.child("x").master_seed == 9


class TestValidation:
    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngFactory("42")  # type: ignore[arg-type]

    def test_numpy_integer_seed_accepted(self):
        f = RngFactory(np.int64(5))
        assert f.master_seed == 5

    def test_seed_sequence_deterministic(self):
        s1 = RngFactory(1).seed_sequence("k")
        s2 = RngFactory(1).seed_sequence("k")
        assert s1.entropy == s2.entropy
