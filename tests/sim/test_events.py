"""Tests for Event objects and the priority vocabulary."""

import pytest

from repro.sim.events import Event, EventPriority


class TestEventPriority:
    def test_causal_ordering_of_classes(self):
        """The vocabulary encodes the paper's causality: cancellations
        before releases before submissions before scheduling passes."""
        assert (
            EventPriority.CANCEL
            < EventPriority.FINISH
            < EventPriority.SUBMIT
            < EventPriority.SCHEDULE
            < EventPriority.CONTROL
        )

    def test_int_enum(self):
        assert EventPriority.CANCEL == 0
        assert isinstance(EventPriority.SUBMIT + 0, int)


class TestEventOrdering:
    def make(self, time=1.0, priority=0, seq=0):
        return Event(time=time, priority=priority, seq=seq,
                     callback=lambda: None)

    def test_time_dominates(self):
        assert self.make(time=1.0, priority=9, seq=9) < self.make(
            time=2.0, priority=0, seq=0
        )

    def test_priority_breaks_time_tie(self):
        assert self.make(priority=0, seq=9) < self.make(priority=1, seq=0)

    def test_seq_breaks_full_tie(self):
        assert self.make(seq=1) < self.make(seq=2)

    def test_callback_not_compared(self):
        a = Event(1.0, 0, 0, callback=lambda: 1)
        b = Event(1.0, 0, 0, callback=lambda: 2)
        assert not a < b and not b < a

    def test_cancel_sets_flag(self):
        ev = self.make()
        assert not ev.cancelled
        ev.cancel()
        assert ev.cancelled

    def test_tag_carried(self):
        ev = Event(1.0, 0, 0, callback=lambda: None, tag={"k": 1})
        assert ev.tag == {"k": 1}


class TestEventMemoryLayout:
    """Event is the hottest allocation in the simulator; it must stay
    slotted so millions of instances avoid per-object ``__dict__``s."""

    def make(self, **kw):
        defaults = dict(time=1.0, priority=0, seq=0, callback=lambda: None)
        defaults.update(kw)
        return Event(**defaults)

    def test_no_instance_dict(self):
        ev = self.make()
        assert not hasattr(ev, "__dict__")

    def test_unknown_attributes_rejected(self):
        ev = self.make()
        with pytest.raises(AttributeError):
            ev.extra = 1

    def test_slots_cover_all_fields(self):
        ev = self.make(tag="t")
        assert (ev.time, ev.priority, ev.seq, ev.tag) == (1.0, 0, 0, "t")
        ev.cancelled = True  # the one deliberately mutable flag
        assert ev.cancelled


class TestKernelOrderingDeterminism:
    """Heap pop order must be a pure function of (time, priority, seq),
    independent of insertion order — the determinism the parallel sweep
    engine relies on."""

    def test_shuffled_heap_pops_in_canonical_order(self):
        import heapq
        import random

        events = [
            Event(time=t, priority=p, seq=s, callback=lambda: None)
            for t in (0.0, 1.0, 1.5)
            for p in (0, 1, 2)
            for s in (10, 11)
        ]
        canonical = sorted(events)
        rng = random.Random(1234)
        for _ in range(5):
            shuffled = list(events)
            rng.shuffle(shuffled)
            heapq.heapify(shuffled)
            popped = [heapq.heappop(shuffled) for _ in range(len(events))]
            keys = [(e.time, e.priority, e.seq) for e in popped]
            assert keys == [(e.time, e.priority, e.seq) for e in canonical]

    def test_total_order_matches_key_tuple(self):
        a = Event(1.0, 2, 3, callback=lambda: None)
        b = Event(1.0, 2, 4, callback=lambda: None)
        c = Event(1.0, 3, 0, callback=lambda: None)
        d = Event(2.0, 0, 0, callback=lambda: None)
        ordered = [a, b, c, d]
        for i, lo in enumerate(ordered):
            for hi in ordered[i + 1:]:
                assert lo < hi and not hi < lo
