"""Tests for Event objects and the priority vocabulary."""

import pytest

from repro.sim.events import Event, EventPriority


class TestEventPriority:
    def test_causal_ordering_of_classes(self):
        """The vocabulary encodes the paper's causality: cancellations
        before releases before submissions before scheduling passes."""
        assert (
            EventPriority.CANCEL
            < EventPriority.FINISH
            < EventPriority.SUBMIT
            < EventPriority.SCHEDULE
            < EventPriority.CONTROL
        )

    def test_int_enum(self):
        assert EventPriority.CANCEL == 0
        assert isinstance(EventPriority.SUBMIT + 0, int)


class TestEventOrdering:
    def make(self, time=1.0, priority=0, seq=0):
        return Event(time=time, priority=priority, seq=seq,
                     callback=lambda: None)

    def test_time_dominates(self):
        assert self.make(time=1.0, priority=9, seq=9) < self.make(
            time=2.0, priority=0, seq=0
        )

    def test_priority_breaks_time_tie(self):
        assert self.make(priority=0, seq=9) < self.make(priority=1, seq=0)

    def test_seq_breaks_full_tie(self):
        assert self.make(seq=1) < self.make(seq=2)

    def test_callback_not_compared(self):
        a = Event(1.0, 0, 0, callback=lambda: 1)
        b = Event(1.0, 0, 0, callback=lambda: 2)
        assert not a < b and not b < a

    def test_cancel_sets_flag(self):
        ev = self.make()
        assert not ev.cancelled
        ev.cancel()
        assert ev.cancelled

    def test_tag_carried(self):
        ev = Event(1.0, 0, 0, callback=lambda: None, tag={"k": 1})
        assert ev.tag == {"k": 1}
