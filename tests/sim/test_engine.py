"""Unit tests for the discrete-event simulation engine."""

import math

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import EventPriority


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_advances_to_event_time(self, sim):
        sim.at(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0

    def test_run_until_stops_clock_at_until(self, sim):
        sim.at(10.0, lambda: None)
        sim.run(until=4.0)
        assert sim.now == 4.0
        assert sim.pending_events == 1

    def test_run_until_executes_boundary_events(self, sim):
        fired = []
        sim.at(4.0, lambda: fired.append(1))
        sim.run(until=4.0)
        assert fired == [1]

    def test_clock_monotone_across_runs(self, sim):
        sim.at(3.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        sim.at(7.0, lambda: None)
        sim.run()
        assert sim.now == 7.0


class TestOrdering:
    def test_time_order(self, sim):
        order = []
        sim.at(2.0, lambda: order.append("b"))
        sim.at(1.0, lambda: order.append("a"))
        sim.run()
        assert order == ["a", "b"]

    def test_priority_breaks_time_ties(self, sim):
        order = []
        sim.at(1.0, lambda: order.append("submit"), EventPriority.SUBMIT)
        sim.at(1.0, lambda: order.append("cancel"), EventPriority.CANCEL)
        sim.at(1.0, lambda: order.append("finish"), EventPriority.FINISH)
        sim.run()
        assert order == ["cancel", "finish", "submit"]

    def test_seq_breaks_priority_ties_fifo(self, sim):
        order = []
        for i in range(5):
            sim.at(1.0, lambda i=i: order.append(i), EventPriority.CONTROL)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_priority_runs_after_state_changes(self, sim):
        order = []
        sim.at(1.0, lambda: order.append("sched"), EventPriority.SCHEDULE)
        sim.at(1.0, lambda: order.append("submit"), EventPriority.SUBMIT)
        sim.run()
        assert order == ["submit", "sched"]


class TestScheduling:
    def test_at_rejects_past(self, sim):
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(4.0, lambda: None)

    def test_at_rejects_nan(self, sim):
        with pytest.raises(SimulationError):
            sim.at(float("nan"), lambda: None)

    def test_after_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_after_relative_to_now(self, sim):
        times = []
        sim.at(3.0, lambda: sim.after(2.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [5.0]

    def test_same_time_self_scheduling(self, sim):
        """Events may schedule at the current instant; they run afterwards."""
        order = []

        def first():
            order.append("first")
            sim.at(sim.now, lambda: order.append("second"))

        sim.at(1.0, first)
        sim.run()
        assert order == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_not_executed(self, sim):
        fired = []
        ev = sim.at(1.0, lambda: fired.append(1))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        ev = sim.at(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.run()

    def test_peek_time_skips_cancelled(self, sim):
        ev = sim.at(1.0, lambda: None)
        sim.at(2.0, lambda: None)
        ev.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty_is_inf(self, sim):
        assert sim.peek_time() == math.inf


class TestExecution:
    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_step_executes_one_event(self, sim):
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_events_executed_counter(self, sim):
        for t in (1.0, 2.0, 3.0):
            sim.at(t, lambda: None)
        sim.run()
        assert sim.events_executed == 3

    def test_max_events_bound(self, sim):
        for t in (1.0, 2.0, 3.0):
            sim.at(t, lambda: None)
        sim.run(max_events=2)
        assert sim.events_executed == 2
        assert sim.pending_events == 1

    def test_drain_discards_pending(self, sim):
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.drain()
        sim.run()
        assert fired == []

    def test_not_reentrant(self, sim):
        def recurse():
            sim.run()

        sim.at(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_iter_pending_excludes_cancelled(self, sim):
        ev1 = sim.at(1.0, lambda: None, tag="a")
        sim.at(2.0, lambda: None, tag="b")
        ev1.cancel()
        tags = [e.tag for e in sim.iter_pending()]
        assert tags == ["b"]

    def test_cascading_events(self, sim):
        """Each event schedules the next; all run in order."""
        seen = []

        def chain(n):
            seen.append(n)
            if n < 5:
                sim.after(1.0, lambda: chain(n + 1))

        sim.at(0.0, lambda: chain(0))
        sim.run()
        assert seen == [0, 1, 2, 3, 4, 5]
        assert sim.now == 5.0


class TestLazyCancellation:
    """Tracked tombstones and the amortised heap compaction."""

    def test_tracked_cancel_not_executed(self, sim):
        fired = []
        ev = sim.at(1.0, lambda: fired.append(1))
        sim.cancel(ev)
        sim.run()
        assert fired == []

    def test_tracked_cancel_idempotent(self, sim):
        ev = sim.at(1.0, lambda: None)
        sim.cancel(ev)
        sim.cancel(ev)
        assert sim._tombstones == 1

    def test_compaction_sweeps_dominant_tombstones(self, sim):
        from repro.sim.engine import _COMPACT_MIN_TOMBSTONES

        n = _COMPACT_MIN_TOMBSTONES
        live = [sim.at(float(i), lambda: None) for i in range(4)]
        dead = [sim.at(10.0 + i, lambda: None) for i in range(n)]
        for ev in dead:
            sim.cancel(ev)
        # The sweep fired: only the live events remain in the heap.
        assert sim.pending_events == len(live)
        assert sim._tombstones == 0
        fired = []
        for i, ev in enumerate(live):
            ev.callback = lambda i=i: fired.append(i)
        sim.run()
        assert fired == [0, 1, 2, 3]

    def test_no_compaction_below_threshold(self, sim):
        evs = [sim.at(float(i), lambda: None) for i in range(10)]
        for ev in evs[:5]:
            sim.cancel(ev)
        assert sim.pending_events == 10  # lazily retained
        assert sim._tombstones == 5
        sim.run()
        assert sim.events_executed == 5

    def test_popped_tombstone_decrements_counter(self, sim):
        ev = sim.at(1.0, lambda: None)
        sim.at(2.0, lambda: None)
        sim.cancel(ev)
        assert sim.peek_time() == 2.0
        assert sim._tombstones == 0

    def test_compaction_preserves_ordering(self, sim):
        from repro.sim.engine import _COMPACT_MIN_TOMBSTONES

        order = []
        for t in (3.0, 1.0, 2.0):
            sim.at(t, lambda t=t: order.append(t))
        doomed = [sim.at(100.0, lambda: None)
                  for _ in range(_COMPACT_MIN_TOMBSTONES)]
        for ev in doomed:
            sim.cancel(ev)
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_drain_resets_tombstones(self, sim):
        ev = sim.at(1.0, lambda: None)
        sim.cancel(ev)
        sim.drain()
        assert sim._tombstones == 0
        assert sim.pending_events == 0
