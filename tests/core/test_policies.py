"""Tests for the pluggable cancellation-policy layer.

Covers the cancel-on-complete semantics (losers run beside the winner
until it finishes), the fault-injector interplay the policy legalises
(lost cancellations of *running* losers are structural no-ops,
downed-scheduler cancels count exactly once), the ``winner_complete``
trace event, and the phase-diagram classification built on top.
"""

import pytest

from repro.cluster.platform import Platform
from repro.core.config import ExperimentConfig
from repro.core.coordinator import Coordinator
from repro.core.experiment import run_single
from repro.faults import FaultConfig, FaultInjector
from repro.policies import (
    CANCELLATION_POLICIES,
    CancelOnComplete,
    CancelOnStart,
    get_cancellation_policy,
)
from repro.sched.job import RequestState
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.workload.stream import StreamJob


def job(origin=0, arrival=0.0, nodes=4, runtime=10.0, requested=None,
        redundant=True):
    return StreamJob(
        origin=origin,
        arrival=arrival,
        nodes=nodes,
        runtime=runtime,
        requested_time=requested if requested is not None else runtime,
        uses_redundancy=redundant,
    )


def make(policy, n_clusters=3, nodes=8, injector=None):
    sim = Simulator()
    platform = Platform(sim, [nodes] * n_clusters, algorithm="easy")
    coord = Coordinator(sim, platform, fault_injector=injector, policy=policy)
    return sim, platform, coord


class TestRegistry:
    def test_lookup_and_identity(self):
        assert isinstance(get_cancellation_policy("cancel-on-start"),
                          CancelOnStart)
        assert isinstance(get_cancellation_policy("Cancel-On-Complete"),
                          CancelOnComplete)
        assert set(CANCELLATION_POLICIES) == {
            "cancel-on-start", "cancel-on-complete",
        }

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown cancellation policy"):
            get_cancellation_policy("cancel-eventually")

    def test_coordinator_accepts_name_or_instance(self):
        sim = Simulator()
        platform = Platform(sim, [8], algorithm="easy")
        by_name = Coordinator(sim, platform, policy="cancel-on-complete")
        assert by_name.policy.expects_duplicate_starts
        by_obj = Coordinator(sim, platform, policy=CancelOnStart())
        assert not by_obj.policy.expects_duplicate_starts


class TestCancelOnComplete:
    def test_loser_runs_until_winner_completes(self):
        # Both clusters idle: under cancel-on-start the sibling is
        # cancelled the instant the winner starts; under
        # cancel-on-complete it starts too and runs to completion.
        sim, platform, coord = make("cancel-on-complete")
        j = job(nodes=8, runtime=10.0)
        coord.schedule_job(j, [0, 1])
        sim.run()
        rj = coord.jobs[0]
        assert rj.winner is not None
        states = sorted(r.state.value for r in rj.requests)
        assert states == ["completed", "completed"]
        assert len(coord.duplicate_starts) == 1
        # The duplicate is charged for its full runtime.
        assert coord.wasted_node_seconds(sim.now) == pytest.approx(10.0 * 8)
        coord.check_invariants()

    def test_pending_loser_cancelled_at_winner_end(self):
        sim, platform, coord = make("cancel-on-complete")
        # Occupy cluster 1 well past the winner's completion so the
        # loser copy there can never start.
        blocker = job(origin=1, nodes=8, runtime=100.0, redundant=False)
        coord.schedule_job(blocker, [1])
        j = job(origin=0, arrival=1.0, nodes=8, runtime=10.0)
        coord.schedule_job(j, [0, 1])
        sim.run()
        rj = coord.jobs[1]
        winner, loser = rj.winner, [r for r in rj.requests
                                    if r is not rj.winner][0]
        assert winner.cluster.cluster.index == 0
        assert loser.state is RequestState.CANCELLED
        # Cancelled at the winner's completion instant, not its start.
        assert loser.cancelled_at == winner.end_time == 11.0
        assert coord.duplicate_starts == []
        assert coord.wasted_node_seconds(sim.now) == 0.0

    def test_sweep_beats_simultaneous_node_release(self):
        # The sweep carries CANCEL priority, so at a shared instant it
        # orders before FINISH events.  Blocker on cluster 1 ends at
        # exactly t=11.0 — the same instant the winner completes — and
        # the pending loser must be withdrawn before the blocker's
        # nodes free up, never sneaking in a late duplicate start.
        sim, platform, coord = make("cancel-on-complete")
        blocker = job(origin=1, nodes=8, runtime=11.0, redundant=False)
        coord.schedule_job(blocker, [1])
        j = job(origin=0, arrival=1.0, nodes=8, runtime=10.0)
        coord.schedule_job(j, [0, 1])
        sim.run()
        rj = coord.jobs[1]
        loser = [r for r in rj.requests if r is not rj.winner][0]
        assert rj.winner.end_time == 11.0
        assert loser.state is RequestState.CANCELLED
        assert loser.start_time is None
        assert coord.duplicate_starts == []

    def test_lost_cancellation_of_running_loser_is_noop(self):
        # p_cancel_loss=1.0: every cancellation *sent* is lost.  A loser
        # that is already RUNNING at sweep time is skipped before any
        # loss draw, so nothing is sent and nothing can be lost.
        injector = FaultInjector(
            FaultConfig(p_cancel_loss=1.0),
            RngFactory(7).generator("faults"),
        )
        sim, platform, coord = make("cancel-on-complete", injector=injector)
        j = job(nodes=8, runtime=10.0)
        coord.schedule_job(j, [0, 1])
        sim.run()
        assert len(coord.duplicate_starts) == 1
        assert coord.lost_cancellations == 0
        assert coord.total_cancellations == 0
        coord.check_invariants()

    def test_downed_scheduler_cancel_counted_once(self):
        sim, platform, coord = make("cancel-on-complete")
        blocker = job(origin=1, nodes=8, runtime=100.0, redundant=False)
        coord.schedule_job(blocker, [1])
        j = job(origin=0, arrival=1.0, nodes=8, runtime=10.0)
        coord.schedule_job(j, [0, 1])
        # Take cluster 1's daemon down before the winner completes: the
        # sweep's cancel is rejected and must count exactly once.
        sim.at(5.0, lambda: platform.schedulers[1].go_down())
        sim.run()
        assert coord.lost_cancellations == 1
        rj = coord.jobs[1]
        loser = [r for r in rj.requests if r is not rj.winner][0]
        assert loser.state is RequestState.PENDING
        # finalize() force-cancels the orphan without recounting it.
        coord.finalize()
        assert loser.state is RequestState.CANCELLED
        assert coord.lost_cancellations == 1
        coord.check_invariants()

    def test_run_single_deterministic(self):
        cfg = ExperimentConfig(
            n_clusters=3, nodes_per_cluster=16, duration=300.0,
            offered_load=2.0, drain=True, seed=20060619,
            scheme="R2", cancellation_policy="cancel-on-complete",
        )
        a = run_single(cfg, 0, check_invariants=True)
        b = run_single(cfg, 0)
        assert a.avg_stretch == b.avg_stretch
        assert a.wasted_node_seconds == b.wasted_node_seconds
        assert [j.start_time for j in a.jobs] == [j.start_time for j in b.jobs]
        assert a.wasted_node_seconds > 0  # losers really do run

    def test_audited_run_accepts_policy(self):
        from repro.sanitize.auditor import run_single_audited

        cfg = ExperimentConfig(
            n_clusters=3, nodes_per_cluster=16, duration=300.0,
            offered_load=2.0, drain=True, seed=20060619,
            scheme="ALL", cancellation_policy="cancel-on-complete",
            faults=FaultConfig(p_cancel_loss=0.3, cancel_delay_mean=30.0,
                               cancel_delay_distribution="exponential"),
        )
        _, auditor = run_single_audited(cfg, 0, mode="collect")
        assert auditor.violations == []


class TestWinnerCompleteTrace:
    def test_event_emitted_per_started_job(self):
        from repro.obs.trace import run_single_traced

        cfg = ExperimentConfig(
            n_clusters=3, nodes_per_cluster=16, duration=300.0,
            offered_load=2.0, drain=True, seed=20060619,
            scheme="R2", cancellation_policy="cancel-on-complete",
        )
        traced = run_single_traced(cfg, replication=0)
        winner_completes = [e for e in traced.events
                            if e[1] == "winner_complete"]
        starts = {e[4] for e in traced.events if e[1] == "start"}
        assert len(winner_completes) == len(starts) > 0
        # Each fires at the winner's completion, which is also traced.
        complete_times = {(e[3], e[0]) for e in traced.events
                          if e[1] == "complete"}
        for t, _etype, _cluster, request_id, _job_id in winner_completes:
            assert (request_id, t) in complete_times

    def test_absent_under_cancel_on_start(self):
        from repro.obs.trace import run_single_traced

        cfg = ExperimentConfig(
            n_clusters=3, nodes_per_cluster=16, duration=300.0,
            offered_load=2.0, drain=True, seed=20060619, scheme="R2",
        )
        traced = run_single_traced(cfg, replication=0)
        assert not any(e[1] == "winner_complete" for e in traced.events)


class TestPhaseDiagram:
    @pytest.fixture(scope="class")
    def diagram(self):
        from repro.policies.phase import run_phase_diagram

        base = ExperimentConfig(
            n_clusters=3, nodes_per_cluster=16, duration=300.0,
            drain=True, seed=20060619,
        )
        return run_phase_diagram(
            base,
            policies=("cancel-on-start", "cancel-on-complete"),
            degrees=(2,), regimes=("lublin",), loads=(1.8,),
            n_replications=2,
        )

    def test_demonstrates_helpful_and_harmful(self, diagram):
        # The acceptance demonstration: same degree, same regime, same
        # load — the cancellation discipline alone flips the verdict.
        helpful = diagram.cell("cancel-on-start", 2, "lublin", 1.8)
        harmful = diagram.cell("cancel-on-complete", 2, "lublin", 1.8)
        assert helpful.stretch_ratio < 1.0
        assert helpful.stretch_class == "helpful"
        assert harmful.stretch_ratio > 1.0
        assert harmful.stretch_class == "harmful"
        # Cost side: duplicate runs burn real node-seconds.
        assert helpful.waste_fraction == pytest.approx(0.0)
        assert harmful.waste_fraction > 0.05
        assert harmful.waste_class == "harmful"

    def test_payload_schema(self, diagram):
        from repro.policies.phase import CLASSES, PHASE_SCHEMA_VERSION

        payload = diagram.to_payload()
        assert payload["kind"] == "repro-phase-diagram"
        assert payload["schema_version"] == PHASE_SCHEMA_VERSION
        assert payload["n_helpful"] >= 1 and payload["n_harmful"] >= 1
        assert len(payload["cells"]) == 2
        for cell in payload["cells"]:
            assert set(cell) == {
                "policy", "degree", "regime", "load", "stretch_ratio",
                "waste_fraction", "stretch_class", "waste_class",
            }
            assert cell["stretch_class"] in CLASSES
            assert cell["waste_class"] in CLASSES

    def test_unknown_cell_raises(self, diagram):
        with pytest.raises(KeyError):
            diagram.cell("cancel-on-start", 4, "lublin", 1.8)

    def test_axes_validated(self):
        from repro.policies.phase import run_phase_diagram

        base = ExperimentConfig(n_clusters=3, nodes_per_cluster=16,
                                duration=300.0, drain=True)
        with pytest.raises(ValueError, match="at least one value"):
            run_phase_diagram(base, (), (2,), ("lublin",), (1.8,), 1)
        with pytest.raises(ValueError, match="degrees must be >= 2"):
            run_phase_diagram(base, ("cancel-on-start",), (1,),
                              ("lublin",), (1.8,), 1)


class TestClassification:
    def test_stretch_bands(self):
        from repro.policies.phase import classify_stretch

        assert classify_stretch(0.5) == "helpful"
        assert classify_stretch(0.99) == "neutral"
        assert classify_stretch(1.0) == "neutral"
        assert classify_stretch(1.01) == "neutral"
        assert classify_stretch(1.5) == "harmful"
        assert classify_stretch(float("nan")) == "harmful"

    def test_waste_one_sided(self):
        from repro.policies.phase import classify_waste

        assert classify_waste(0.0) == "neutral"
        assert classify_waste(0.04) == "neutral"
        assert classify_waste(0.2) == "harmful"
