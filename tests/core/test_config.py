"""Tests for experiment configuration validation."""

import pytest

from repro.core.config import ExperimentConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = ExperimentConfig()
        assert cfg.n_clusters == 10
        assert cfg.scheme == "NONE"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_clusters": 0},
            {"duration": 0.0},
            {"adoption_probability": 1.5},
            {"adoption_probability": -0.1},
            {"remote_inflation": -0.1},
            {"scheme": "R0"},
            {"scheme": "F1.5"},
            {"scheme": "Rx"},
            {"scheme": "SOMETHING"},
            {"estimates": "psychic"},
            {"cancellation_policy": "cancel-eventually"},
            {"placement": "sideways"},
            {"placement": "balanced", "target_bias_ratio": 0.5},
            {"service_regime": "uniform"},
            {"algorithm": "sjf"},
            {"nodes_per_cluster": 0},
            {"interarrival_range": (0.0, 20.0)},
            {"interarrival_range": (20.0, 2.0)},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_explicit_node_counts_must_match_n(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_clusters=3, nodes_per_cluster=(128, 128))

    def test_explicit_node_counts_accepted(self):
        cfg = ExperimentConfig(n_clusters=2, nodes_per_cluster=[64, 256])
        assert cfg.nodes_per_cluster == (64, 256)


class TestDerivation:
    def test_with_creates_modified_copy(self):
        a = ExperimentConfig()
        b = a.with_(scheme="ALL", seed=7)
        assert b.scheme == "ALL" and b.seed == 7
        assert a.scheme == "NONE"

    def test_with_validates(self):
        with pytest.raises(ValueError):
            ExperimentConfig().with_(scheme="bogus")

    def test_scheduler_kwargs_for_cbf(self):
        cfg = ExperimentConfig(algorithm="cbf", cbf_compress_interval=5.0)
        assert cfg.scheduler_kwargs == {"compress_interval": 5.0}

    def test_scheduler_kwargs_empty_for_easy(self):
        assert ExperimentConfig(algorithm="easy").scheduler_kwargs == {}

    def test_describe_mentions_key_facts(self):
        text = ExperimentConfig(scheme="HALF", algorithm="cbf").describe()
        assert "HALF" in text and "CBF" in text and "N=10" in text

    def test_frozen(self):
        cfg = ExperimentConfig()
        with pytest.raises(AttributeError):
            cfg.scheme = "ALL"  # type: ignore[misc]
