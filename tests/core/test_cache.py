"""Tests for the content-addressed result cache."""

import builtins
import dataclasses
import pickle

import pytest

from repro.core.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    config_fingerprint,
    shared_cache,
)
from repro.core.config import ExperimentConfig
from repro.core.experiment import run_single


def tiny(**kw):
    defaults = dict(
        n_clusters=3, nodes_per_cluster=16, duration=300.0,
        offered_load=2.0, drain=True, seed=8,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


def results_equal(a, b) -> bool:
    """Field-by-field equality, ignoring the wall-clock measurements."""
    da = dataclasses.asdict(a)
    db = dataclasses.asdict(b)
    for d in (da, db):
        d.pop("wall_time_s")
        d.pop("phase_timings")
    return da == db


class TestFingerprint:
    def test_stable_across_instances(self):
        assert config_fingerprint(tiny()) == config_fingerprint(tiny())

    def test_changes_with_every_field(self):
        base = config_fingerprint(tiny())
        variants = [
            tiny(n_clusters=4),
            tiny(nodes_per_cluster=32),
            tiny(scheme="R2"),
            tiny(algorithm="cbf"),
            tiny(seed=9),
            tiny(duration=600.0),
            tiny(adoption_probability=0.5),
            tiny(estimates="phi"),
            tiny(remote_inflation=0.1),
            tiny(cancellation_latency=1.0),
        ]
        fps = [config_fingerprint(v) for v in variants]
        assert base not in fps
        assert len(set(fps)) == len(fps), "variant fingerprints collide"

    def test_changes_with_schema_version(self):
        cfg = tiny()
        assert config_fingerprint(cfg) != config_fingerprint(
            cfg, schema_version=CACHE_SCHEMA_VERSION + 1
        )

    def test_tuple_nodes_fingerprintable(self):
        cfg = tiny(nodes_per_cluster=(16, 32, 16))
        assert config_fingerprint(cfg) != config_fingerprint(tiny())


class TestResultCacheRoundtrip:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny()
        assert cache.get(cfg, 0) is None
        result = run_single(cfg, 0)
        cache.put(cfg, 0, result)
        assert cache.get(cfg, 0) is result  # memory layer, same object

    def test_disk_hit_bit_identical_to_fresh_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny()
        cache.put(cfg, 0, run_single(cfg, 0))
        cache.clear_memory()  # force the disk layer
        cached = cache.get(cfg, 0)
        fresh = run_single(cfg, 0)
        assert cached is not None
        assert results_equal(cached, fresh)

    def test_replications_keyed_separately(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny()
        cache.put(cfg, 0, run_single(cfg, 0))
        assert cache.get(cfg, 1) is None

    def test_memory_only_cache(self):
        cache = ResultCache(None)
        cfg = tiny()
        result = run_single(cfg, 0)
        cache.put(cfg, 0, result)
        assert cache.get(cfg, 0) is result

    def test_memory_layer_is_lru_bounded(self):
        cache = ResultCache(None, memory_entries=2)
        cfg = tiny()
        result = run_single(cfg, 0)
        for rep in range(3):
            cache.put(cfg, rep, result)
        assert cache.get(cfg, 0) is None  # evicted
        assert cache.get(cfg, 2) is result

    def test_stats_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny()
        cache.get(cfg, 0)
        cache.put(cfg, 0, run_single(cfg, 0))
        cache.get(cfg, 0)
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1


class TestCorruptionHandling:
    def _entry_path(self, cache, cfg, rep):
        fp = config_fingerprint(cfg)
        return cache._path(fp, rep)

    def test_truncated_pickle_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny()
        cache.put(cfg, 0, run_single(cfg, 0))
        path = self._entry_path(cache, cfg, 0)
        path.write_bytes(path.read_bytes()[:20])
        cache.clear_memory()
        assert cache.get(cfg, 0) is None
        assert not path.exists(), "corrupted entry must be removed"
        assert cache.stats.discarded == 1

    def test_garbage_bytes_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny()
        cache.put(cfg, 0, run_single(cfg, 0))
        path = self._entry_path(cache, cfg, 0)
        path.write_bytes(b"not a pickle at all")
        cache.clear_memory()
        assert cache.get(cfg, 0) is None
        assert not path.exists()

    def test_mismatched_payload_discarded(self, tmp_path):
        """A well-formed pickle whose metadata does not match is not trusted."""
        cache = ResultCache(tmp_path)
        cfg = tiny()
        result = run_single(cfg, 0)
        cache.put(cfg, 0, result)
        path = self._entry_path(cache, cfg, 0)
        payload = pickle.loads(path.read_bytes())
        payload["fingerprint"] = "0" * 64  # moved/renamed entry
        path.write_bytes(pickle.dumps(payload))
        cache.clear_memory()
        assert cache.get(cfg, 0) is None
        assert not path.exists()

    def test_stale_schema_version_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny()
        cache.put(cfg, 0, run_single(cfg, 0))
        path = self._entry_path(cache, cfg, 0)
        payload = pickle.loads(path.read_bytes())
        payload["schema"] = CACHE_SCHEMA_VERSION - 1
        path.write_bytes(pickle.dumps(payload))
        cache.clear_memory()
        assert cache.get(cfg, 0) is None

    def test_transient_io_error_leaves_file_alone(self, tmp_path, monkeypatch):
        """An OSError (permissions, NFS hiccup) is a miss, not corruption:
        the entry may be perfectly valid and must survive."""
        cache = ResultCache(tmp_path)
        cfg = tiny()
        cache.put(cfg, 0, run_single(cfg, 0))
        path = self._entry_path(cache, cfg, 0)
        cache.clear_memory()
        real_open = builtins.open

        def denying_open(file, *args, **kwargs):
            if str(file) == str(path):
                raise PermissionError(13, "Permission denied", str(file))
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", denying_open)
        assert cache.get(cfg, 0) is None
        monkeypatch.undo()
        assert path.exists(), "a transient I/O failure must not delete entries"
        assert cache.stats.discarded == 0
        cached = cache.get(cfg, 0)  # readable again once the error clears
        assert cached is not None

    def test_recovers_after_discard(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny()
        result = run_single(cfg, 0)
        cache.put(cfg, 0, result)
        path = self._entry_path(cache, cfg, 0)
        path.write_bytes(b"junk")
        cache.clear_memory()
        assert cache.get(cfg, 0) is None
        cache.put(cfg, 0, result)
        cache.clear_memory()
        cached = cache.get(cfg, 0)
        assert cached is not None and results_equal(cached, result)


class TestPruneStale:
    """``repro cache prune``: stale-schema files are unreachable by the
    read path (fingerprints embed the schema version, so lookups probe
    new-schema paths only) and used to accumulate forever."""

    def _entry_path(self, cache, cfg, rep):
        return cache._path(config_fingerprint(cfg), rep)

    def _age_schema(self, path):
        payload = pickle.loads(path.read_bytes())
        payload["schema"] = CACHE_SCHEMA_VERSION - 1
        path.write_bytes(pickle.dumps(payload))

    def test_removes_stale_keeps_current(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny()
        result = run_single(cfg, 0)
        cache.put(cfg, 0, result)
        cache.put(cfg, 1, result)
        stale = self._entry_path(cache, cfg, 0)
        keep = self._entry_path(cache, cfg, 1)
        self._age_schema(stale)
        assert cache.prune_stale() == 1
        assert not stale.exists()
        assert keep.exists()
        cache.clear_memory()
        assert cache.get(cfg, 1) is not None
        assert cache.stats.discarded == 1

    def test_removes_unreadable_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny()
        cache.put(cfg, 0, run_single(cfg, 0))
        junk = self._entry_path(cache, cfg, 0)
        junk.write_bytes(b"not a pickle")
        assert cache.prune_stale() == 1
        assert not junk.exists()

    def test_empty_shard_dirs_are_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny()
        cache.put(cfg, 0, run_single(cfg, 0))
        path = self._entry_path(cache, cfg, 0)
        self._age_schema(path)
        assert cache.prune_stale() == 1
        assert not path.parent.exists(), "emptied shard dir pruned too"

    def test_idempotent_and_safe_on_missing_root(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.prune_stale() == 0
        assert ResultCache(None).prune_stale() == 0

    def test_cli_prune_reports_removals(self, tmp_path, capsys):
        import json as json_mod

        from repro.cli import main

        cache = ResultCache(tmp_path)
        cfg = tiny()
        cache.put(cfg, 0, run_single(cfg, 0))
        self._age_schema(self._entry_path(cache, cfg, 0))
        assert main(
            ["-q", "cache", "prune", "--cache-dir", str(tmp_path)]
        ) == 0
        report = json_mod.loads(capsys.readouterr().out)
        assert report == {"cache_dir": str(tmp_path), "removed": 1}


class TestSharedCache:
    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert shared_cache() is None

    def test_memory_singleton_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        a = shared_cache()
        b = shared_cache()
        assert a is b and a is not None and a.root is None

    def test_disk_cache_from_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = shared_cache()
        assert cache is not None and cache.root == tmp_path
        assert shared_cache() is cache  # one instance per directory
