"""Property-based tests of the first-start-wins protocol.

Random multi-cluster redundancy workloads, audited event by event:
exactly one winner per job, sibling accounting, node conservation, and
the identity "submissions = starts + cancellations + still pending"
across the platform.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.platform import Platform
from repro.core.coordinator import Coordinator
from repro.sched.job import RequestState
from repro.sim.engine import Simulator
from repro.workload.stream import StreamJob

N_CLUSTERS = 3
NODES = 8

job_strategy = st.tuples(
    st.floats(min_value=0.0, max_value=40.0),     # arrival
    st.integers(min_value=0, max_value=N_CLUSTERS - 1),  # origin
    st.integers(min_value=1, max_value=NODES),    # nodes
    st.floats(min_value=0.1, max_value=20.0),     # runtime
    st.integers(min_value=1, max_value=N_CLUSTERS),  # copies
)

workload_strategy = st.lists(job_strategy, min_size=1, max_size=25)


def run_protocol(workload, algorithm="easy", latency=0.0):
    sim = Simulator()
    platform = Platform(sim, [NODES] * N_CLUSTERS, algorithm=algorithm)
    coord = Coordinator(sim, platform, cancellation_latency=latency)
    for arrival, origin, nodes, runtime, copies in workload:
        spec = StreamJob(
            origin=origin, arrival=arrival, nodes=nodes, runtime=runtime,
            requested_time=runtime, uses_redundancy=copies > 1,
        )
        remotes = [c for c in range(N_CLUSTERS) if c != origin]
        targets = [origin] + remotes[: copies - 1]
        coord.schedule_job(spec, targets)
    while sim.step():
        platform.check_invariants()
    coord.check_invariants()
    return coord, platform


@settings(max_examples=50, deadline=None)
@given(workload=workload_strategy)
def test_every_job_exactly_one_winner(workload):
    coord, _ = run_protocol(workload)
    for job in coord.jobs:
        winners = [
            r for r in job.requests
            if r.state is RequestState.COMPLETED
        ]
        assert len(winners) == 1
        assert job.winner is winners[0]
        losers = [r for r in job.requests if r is not job.winner]
        assert all(r.state is RequestState.CANCELLED for r in losers)


@settings(max_examples=50, deadline=None)
@given(workload=workload_strategy)
def test_request_accounting_identity(workload):
    coord, platform = run_protocol(workload)
    submitted = sum(s.stats.submitted for s in platform.schedulers)
    started = sum(s.stats.started for s in platform.schedulers)
    cancelled = sum(s.stats.cancelled for s in platform.schedulers)
    pending = sum(s.queue_length for s in platform.schedulers)
    assert submitted == coord.total_requests
    assert cancelled == coord.total_cancellations
    assert submitted == started + cancelled + pending
    assert pending == 0  # drained run
    assert started == len(coord.jobs)  # no duplicates at zero latency


@settings(max_examples=40, deadline=None)
@given(workload=workload_strategy)
def test_winner_is_earliest_starting_copy(workload):
    coord, _ = run_protocol(workload)
    for job in coord.jobs:
        assert job.winner.start_time is not None
        # No sibling may carry an earlier start.
        for r in job.requests:
            if r.start_time is not None:
                assert r.start_time >= job.winner.start_time


@settings(max_examples=30, deadline=None)
@given(
    workload=workload_strategy,
    latency=st.floats(min_value=0.1, max_value=10.0),
)
def test_latency_duplicates_are_bounded_and_accounted(workload, latency):
    """With positive latency, duplicate starts may occur but each job
    still has exactly one winner; duplicates run to completion."""
    coord, platform = run_protocol(workload, latency=latency)
    for job in coord.jobs:
        assert job.winner is not None
    for dup in coord.duplicate_starts:
        assert dup.state is RequestState.COMPLETED
        assert dup.group.winner is not dup
    started = sum(s.stats.started for s in platform.schedulers)
    assert started == len(coord.jobs) + len(coord.duplicate_starts)


@settings(max_examples=20, deadline=None)
@given(workload=workload_strategy)
def test_protocol_identical_across_algorithms_in_counts(workload):
    """All three schedulers keep the same protocol-level invariants."""
    for algorithm in ("fcfs", "easy", "cbf"):
        coord, platform = run_protocol(workload, algorithm=algorithm)
        assert all(j.completed for j in coord.jobs)
        assert sum(s.queue_length for s in platform.schedulers) == 0
