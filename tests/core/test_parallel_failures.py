"""Failure-path tests for the sweep engine: crashes, retries, naming.

The runners handed to ``run_grid`` must be module-level (picklable) —
they travel to worker processes through the pool initializer.  Flag
files (rooted at ``REPRO_TEST_FLAG_DIR``) coordinate "fail exactly
once" behaviour across processes.
"""

import os
import pickle
from pathlib import Path

import pytest

from repro.core.cache import ResultCache
from repro.core.config import ExperimentConfig
from repro.core.experiment import run_single
from repro.core.parallel import (
    GridStats,
    TaskError,
    resolve_workers,
    run_grid,
)


def tiny(**kw):
    defaults = dict(
        n_clusters=4, nodes_per_cluster=16, duration=300.0,
        offered_load=2.0, drain=True, seed=8,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


def _fail_rep1(config, replication):
    if replication == 1:
        raise ValueError("boom on rep 1")
    return run_single(config, replication)


def _transient_rep1(config, replication):
    flag = Path(os.environ["REPRO_TEST_FLAG_DIR"]) / f"rep{replication}"
    if replication == 1 and not flag.exists():
        flag.write_text("failed once")
        raise ValueError("transient failure")
    return run_single(config, replication)


def _crash_rep1(config, replication):
    if replication == 1:
        os._exit(13)  # simulate the worker process dying outright
    return run_single(config, replication)


def _crash_once_rep1(config, replication):
    flag = Path(os.environ["REPRO_TEST_FLAG_DIR"]) / "crashed"
    if replication == 1 and not flag.exists():
        flag.write_text("crashed once")
        os._exit(13)
    return run_single(config, replication)


@pytest.fixture
def flag_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TEST_FLAG_DIR", str(tmp_path))
    return tmp_path


class TestResolveWorkers:
    @pytest.mark.parametrize("value,expected", [
        (None, 1), ("", 1), ("  ", 1), ("4", 4), (4, 4), (" 2 ", 2),
    ])
    def test_accepted(self, value, expected):
        assert resolve_workers(value) == expected

    @pytest.mark.parametrize("value", ["0", 0, "-2", -2, "abc", "3.5"])
    def test_rejected(self, value):
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(value, source="REPRO_WORKERS")

    def test_error_names_the_source(self):
        with pytest.raises(ValueError, match="--workers"):
            resolve_workers("no", source="--workers")


class TestSerialFailures:
    def test_persistent_failure_names_the_task(self):
        stats = GridStats()
        with pytest.raises(TaskError, match="rep 1") as err:
            run_grid([tiny()], 2, runner=_fail_rep1, stats=stats)
        assert err.value.replication == 1
        assert err.value.description == tiny().describe()
        assert "ValueError" in err.value.cause
        assert stats.retries == 1
        assert stats.total_failures == 2  # first try + the retry

    def test_transient_failure_retried_once(self, flag_dir):
        stats = GridStats()
        [results] = run_grid(
            [tiny()], 3, runner=_transient_rep1, stats=stats
        )
        assert [r.replication for r in results] == [0, 1, 2]
        assert stats.retries == 1
        assert stats.total_failures == 1


class TestParallelFailures:
    def test_persistent_failure_names_the_task(self):
        stats = GridStats()
        with pytest.raises(TaskError, match="rep 1") as err:
            run_grid(
                [tiny()], 4, n_workers=2, chunksize=1,
                runner=_fail_rep1, stats=stats,
            )
        assert err.value.replication == 1
        assert stats.retries >= 1

    def test_transient_failure_recovers(self, flag_dir):
        stats = GridStats()
        [results] = run_grid(
            [tiny()], 4, n_workers=2, chunksize=1,
            runner=_transient_rep1, stats=stats,
        )
        assert [r.replication for r in results] == [0, 1, 2, 3]
        assert stats.retries == 1

    def test_worker_crash_names_a_suspect(self):
        stats = GridStats()
        with pytest.raises(TaskError, match="crashed") as err:
            run_grid(
                [tiny()], 4, n_workers=2, chunksize=1,
                runner=_crash_rep1, stats=stats,
            )
        assert "BrokenProcessPool" in err.value.cause
        assert err.value.description == tiny().describe()
        assert stats.retries == 1  # one fresh-pool attempt before giving up

    def test_worker_crash_recovers_on_fresh_pool(self, flag_dir):
        stats = GridStats()
        [results] = run_grid(
            [tiny()], 4, n_workers=2, chunksize=1,
            runner=_crash_once_rep1, stats=stats,
        )
        assert [r.replication for r in results] == [0, 1, 2, 3]
        assert stats.retries == 1


class TestTaskError:
    def test_survives_pickling(self):
        err = TaskError("cfg(x)", 3, "ValueError('nope')")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.description == "cfg(x)"
        assert clone.replication == 3
        assert clone.cause == "ValueError('nope')"
        assert "rep 3" in str(clone)


class TestGridStats:
    def test_as_dict_keys(self):
        stats = GridStats()
        stats.record_failure("cfg rep 0")
        stats.record_failure("cfg rep 0")
        stats.retries = 1
        assert stats.as_dict() == {
            "task_failures": {"cfg rep 0": 2},
            "task_retries": 1,
        }
        assert stats.total_failures == 2


class TestWarmProgress:
    def test_warm_rerun_reports_cache_resolution(self):
        cache = ResultCache(None)
        cold = []
        run_grid([tiny(), tiny(scheme="ALL")], 2, cache=cache,
                 progress=cold.append)
        assert len(cold) == 4, "cold runs keep the one-line-per-task contract"
        warm = []
        run_grid([tiny(), tiny(scheme="ALL")], 2, cache=cache,
                 progress=warm.append)
        assert len(warm) == 1
        assert "4/4" in warm[0] and "cache" in warm[0]
