"""Tests for the pluggable executors, centred on the work queue.

The lease protocol is driven with an injected fake clock so expiry is
deterministic; "workers" here are plain threads calling the queue
directly (the HTTP transport on top is covered in ``tests/service``).
The crash-resume tests pin the tentpole guarantee: a dead worker or a
killed sweep never loses completed work and never recomputes it.
"""

import dataclasses
import threading

import pytest

from repro.core.cache import ResultCache
from repro.core.config import ExperimentConfig
from repro.core.executors import (
    ChunkQueue,
    InProcessExecutor,
    WorkQueueExecutor,
)
from repro.core.orchestrator import Orchestrator, TaskError


def tiny(**kw):
    defaults = dict(
        n_clusters=4, nodes_per_cluster=16, duration=300.0,
        offered_load=2.0, drain=True, seed=8,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


class FakeResult:
    def __init__(self, scheme, replication):
        self.scheme = scheme
        self.replication = replication

    def __eq__(self, other):
        return (self.scheme, self.replication) == (
            other.scheme, other.replication
        )

    def __hash__(self):
        return hash((self.scheme, self.replication))


def fake_runner(config, replication):
    return FakeResult(config.scheme, replication)


def strip_wall(result):
    d = dataclasses.asdict(result)
    d.pop("wall_time_s")
    d.pop("phase_timings")
    return d


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_queue(n_chunks=3, **kw):
    chunks = {cid: [(0, cid)] for cid in range(n_chunks)}
    kw.setdefault("lease_ttl_s", 10.0)
    kw.setdefault("clock", FakeClock())
    return ChunkQueue(chunks, **kw), kw["clock"]


class TestChunkQueue:
    def test_leases_grant_lowest_open_chunk_first(self):
        queue, _ = make_queue(2)
        a = queue.lease("w1")
        b = queue.lease("w2")
        assert (a.chunk_id, b.chunk_id) == (0, 1)
        assert a.token != b.token
        assert queue.lease("w3") is None, "nothing left to offer"

    def test_heartbeat_extends_the_deadline(self):
        queue, clock = make_queue(1, lease_ttl_s=10.0)
        lease = queue.lease("w1")
        clock.advance(8.0)
        assert queue.heartbeat(lease.chunk_id, lease.token) is True
        clock.advance(8.0)  # past the original deadline, not the renewed
        assert queue.expire() == []
        clock.advance(8.0)
        assert queue.expire() == [lease.chunk_id]

    def test_expiry_requeues_for_another_worker(self):
        queue, clock = make_queue(1, lease_ttl_s=5.0)
        first = queue.lease("w1")
        clock.advance(6.0)
        second = queue.lease("w2")  # lease() expires internally first
        assert second is not None
        assert second.chunk_id == first.chunk_id
        assert second.attempt == 2
        assert queue.heartbeat(first.chunk_id, first.token) is False

    def test_attempt_budget_exhaustion_marks_failed(self):
        queue, clock = make_queue(1, lease_ttl_s=5.0, max_attempts=2)
        for _ in range(2):
            assert queue.lease("w") is not None
            clock.advance(6.0)
            queue.expire()
        assert queue.lease("w") is None
        cid, task, attempts = queue.first_failed()
        assert (cid, task, attempts) == (0, (0, 0), 2)
        assert queue.outstanding() == 1, "failed chunks stay outstanding"

    def test_stale_completion_still_buffers_results(self):
        """A slow worker racing its own expiry never wastes its work."""
        queue, clock = make_queue(1, lease_ttl_s=5.0)
        slow = queue.lease("slow")
        clock.advance(6.0)
        fast = queue.lease("fast")  # requeued to a second worker
        results = [(0, 0, FakeResult("NONE", 0))]
        assert queue.complete(slow.chunk_id, slow.token, results) is False
        assert queue.outstanding() == 0
        assert queue.drain_completed() == [(0, results)]
        # The fast worker's duplicate arrives after: not re-buffered.
        assert queue.complete(fast.chunk_id, fast.token, results) is False
        assert queue.drain_completed() == []

    def test_remote_failure_consumes_an_attempt(self):
        queue, _ = make_queue(1, max_attempts=2)
        lease = queue.lease("w")
        assert queue.fail(lease.chunk_id, lease.token, "boom") is True
        retry = queue.lease("w")
        assert retry.attempt == 2
        queue.fail(retry.chunk_id, retry.token, "boom again")
        assert queue.first_failed() is not None

    def test_snapshot_counts(self):
        queue, _ = make_queue(3)
        lease = queue.lease("w")
        queue.complete(lease.chunk_id, lease.token, [])
        assert queue.snapshot() == {
            "chunks": 3, "open": 2, "leased": 0, "done": 1, "failed": 0,
        }


def drain_queue_in_thread(executor, runner, configs, worker_id="w"):
    """Background 'worker': polls the executor's queue until it drains."""

    def loop():
        while True:
            queue = executor.queue
            if queue is None:
                return
            lease = queue.lease(worker_id)
            if lease is None:
                if queue.outstanding() == 0:
                    return
                continue
            results = [
                (ci, rep, runner(configs[ci], rep))
                for ci, rep in lease.tasks
            ]
            queue.complete(lease.chunk_id, lease.token, results)

    thread = threading.Thread(target=loop, daemon=True)
    return thread


class TestWorkQueueExecutor:
    def test_grid_matches_inprocess(self):
        configs = [tiny(), tiny(scheme="R2")]
        serial = Orchestrator(
            configs, 2, runner=fake_runner,
        ).execute(InProcessExecutor())

        executor = WorkQueueExecutor(poll_interval_s=0.01)
        orch = Orchestrator(configs, 2, runner=fake_runner, chunksize=1)
        orch.prepare()
        thread = drain_queue_in_thread(executor, fake_runner, orch.unique)
        # Start the worker only once the queue is published.
        executor._on_queue_ready = lambda queue: thread.start()
        queued = orch.execute(executor)
        thread.join(timeout=10.0)
        assert queued == serial

    def test_exhausted_chunk_raises_task_error(self):
        clock = FakeClock()
        executor = WorkQueueExecutor(
            lease_ttl_s=5.0, max_attempts=2, poll_interval_s=0.0,
            clock=clock,
        )
        orch = Orchestrator([tiny()], 1, chunksize=1)

        def doomed_worker(queue):
            # Lease and abandon: each poll advances the clock past the
            # TTL, so the lease expires every attempt.
            def loop():
                while executor.queue is not None:
                    lease = queue.lease("doomed")
                    if lease is None and queue.outstanding() == 0:
                        return
                    clock.advance(6.0)

            threading.Thread(target=loop, daemon=True).start()

        executor._on_queue_ready = doomed_worker
        with pytest.raises(TaskError, match="lease attempt"):
            orch.execute(executor)
        assert executor.queue is None, "queue unpublished on exit"


class TestCrashResume:
    """The tentpole guarantee: interrupted sweeps resume, never redo."""

    def test_dead_worker_chunk_is_recomputed_elsewhere(self):
        clock = FakeClock()
        executor = WorkQueueExecutor(
            lease_ttl_s=5.0, max_attempts=3, poll_interval_s=0.01,
            clock=clock,
        )
        orch = Orchestrator([tiny()], 3, runner=fake_runner, chunksize=1)
        orch.prepare()
        computed = []

        def counting_runner(config, replication):
            computed.append(replication)
            return fake_runner(config, replication)

        def workers(queue):
            def loop():
                died = False
                while executor.queue is not None:
                    lease = queue.lease("w")
                    if lease is None:
                        if queue.outstanding() == 0:
                            return
                        continue
                    if not died:
                        # First lease: the worker "dies" mid-chunk.
                        died = True
                        clock.advance(6.0)
                        continue
                    results = [
                        (ci, rep, counting_runner(orch.unique[ci], rep))
                        for ci, rep in lease.tasks
                    ]
                    queue.complete(lease.chunk_id, lease.token, results)

            threading.Thread(target=loop, daemon=True).start()

        executor._on_queue_ready = workers
        [results] = orch.execute(executor)
        assert [r.replication for r in results] == [0, 1, 2]
        assert sorted(computed) == [0, 1, 2], (
            "the abandoned chunk was recomputed exactly once"
        )

    def test_killed_sweep_resumes_from_disk_cache(self, tmp_path):
        """Kill the executor mid-sweep; a rebuilt orchestrator over the
        same disk cache re-runs *only* the incomplete chunks and yields
        a byte-identical grid.  Uses the real ``run_single`` — the disk
        cache only trusts genuine ExperimentResult payloads."""
        from repro.core.experiment import run_single

        configs = [tiny(), tiny(scheme="R2")]
        reference = Orchestrator(configs, 2).execute(InProcessExecutor())

        cache = ResultCache(tmp_path / "cache")
        first_calls = []

        def crashing_runner(config, replication):
            if len(first_calls) == 2:
                raise KeyboardInterrupt("sweep killed mid-run")
            first_calls.append((config.scheme, replication))
            return run_single(config, replication)

        crashed = Orchestrator(
            configs, 2, cache=cache, runner=crashing_runner, chunksize=1,
        )
        with pytest.raises(KeyboardInterrupt):
            crashed.execute(InProcessExecutor())
        assert len(first_calls) == 2, "two tasks completed before the kill"

        # Fresh process: new orchestrator, new cache handle, same disk.
        resumed_cache = ResultCache(tmp_path / "cache")
        resumed_calls = []

        def counting_runner(config, replication):
            resumed_calls.append((config.scheme, replication))
            return run_single(config, replication)

        resumed = Orchestrator(
            configs, 2, cache=resumed_cache, runner=counting_runner,
            chunksize=1,
        )
        resumed.prepare()
        pending = sum(
            len(c) for c in resumed.pending_chunks().values()
        )
        assert pending == 2, "completed tasks resolved from the cache"
        grids = resumed.execute(InProcessExecutor())
        assert len(resumed_calls) == 2, "only incomplete chunks re-ran"
        assert set(resumed_calls).isdisjoint(first_calls)
        assert [
            [strip_wall(r) for r in per_config] for per_config in grids
        ] == [
            [strip_wall(r) for r in per_config] for per_config in reference
        ]

    def test_resume_through_workqueue_matches_serial(self, tmp_path):
        """Same resume invariant when the second leg runs on the queue."""
        from repro.core.experiment import run_single

        configs = [tiny()]
        reference = Orchestrator(configs, 4).execute(InProcessExecutor())

        cache = ResultCache(tmp_path / "cache")
        half = Orchestrator(configs, 2, cache=cache)
        half.execute(InProcessExecutor())  # reps 0..1 land in the cache

        executor = WorkQueueExecutor(poll_interval_s=0.01)
        resumed = Orchestrator(
            configs, 4, cache=ResultCache(tmp_path / "cache"),
            chunksize=1,
        )
        resumed.prepare()
        assert sum(
            len(c) for c in resumed.pending_chunks().values()
        ) == 2
        thread = drain_queue_in_thread(
            executor, run_single, resumed.unique,
        )
        executor._on_queue_ready = lambda queue: thread.start()
        grids = resumed.execute(executor)
        thread.join(timeout=10.0)
        assert [strip_wall(r) for r in grids[0]] == [
            strip_wall(r) for r in reference[0]
        ]
