"""Tests for schedule-quality metrics."""

import logging
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    MetricSummary,
    RatioSummary,
    bounded_slowdown,
    mean_of_ratios,
    relative,
    stretch,
    summarize_ratios,
)


class TestStretch:
    def test_basic(self):
        assert stretch(40.0, 10.0) == 4.0

    def test_zero_wait_is_one(self):
        assert stretch(10.0, 10.0) == 1.0

    def test_float_rounding_clamped_to_one(self):
        rt = 4.224930832079049
        ta = 4.224930832079046  # a few ulps below (event arithmetic)
        assert stretch(ta, rt) == 1.0

    def test_clearly_negative_wait_rejected(self):
        with pytest.raises(ValueError):
            stretch(5.0, 10.0)

    def test_nonpositive_runtime_rejected(self):
        with pytest.raises(ValueError):
            stretch(10.0, 0.0)

    @settings(max_examples=100, deadline=None)
    @given(
        wait=st.floats(min_value=0.0, max_value=1e6),
        runtime=st.floats(min_value=1e-3, max_value=1e6),
    )
    def test_property_at_least_one(self, wait, runtime):
        assert stretch(wait + runtime, runtime) >= 1.0


class TestBoundedSlowdown:
    def test_floors_short_runtimes(self):
        # A 1-second job waiting 99s: raw stretch 100, bounded 10.
        assert stretch(100.0, 1.0) == 100.0
        assert bounded_slowdown(100.0, 1.0) == 10.0

    def test_matches_stretch_for_long_jobs(self):
        assert bounded_slowdown(40.0, 20.0) == stretch(40.0, 20.0)

    def test_never_below_one(self):
        assert bounded_slowdown(0.5, 1.0) == 1.0

    def test_custom_tau(self):
        assert bounded_slowdown(100.0, 1.0, tau=50.0) == 2.0


class TestMetricSummary:
    def test_of_values(self):
        s = MetricSummary.of([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == 2.0
        assert s.maximum == 3.0
        assert s.std == pytest.approx(np.std([1, 2, 3]))

    def test_cv_percent(self):
        s = MetricSummary.of([2.0, 2.0, 2.0])
        assert s.cv_percent == 0.0
        s2 = MetricSummary.of([1.0, 3.0])
        assert s2.cv_percent == pytest.approx(50.0)

    def test_empty(self):
        s = MetricSummary.of([])
        assert s.count == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.cv_percent)


class TestRelative:
    def test_ratio(self):
        assert relative(0.8, 1.0) == 0.8

    def test_zero_baseline_is_nan(self):
        assert math.isnan(relative(1.0, 0.0))

    def test_mean_of_ratios_is_paired(self):
        """Mean of per-experiment ratios, not ratio of means — they differ."""
        pairs = [(1.0, 2.0), (9.0, 3.0)]
        assert mean_of_ratios(pairs) == pytest.approx((0.5 + 3.0) / 2)
        ratio_of_means = (1.0 + 9.0) / (2.0 + 3.0)
        assert mean_of_ratios(pairs) != ratio_of_means

    def test_mean_of_ratios_skips_nan(self):
        pairs = [(1.0, 0.0), (2.0, 4.0)]
        assert mean_of_ratios(pairs) == 0.5

    def test_mean_of_ratios_all_bad(self):
        assert math.isnan(mean_of_ratios([(1.0, 0.0)]))


class TestSummarizeRatios:
    def test_counts_used_and_dropped(self):
        s = summarize_ratios([(1.0, 2.0), (3.0, 0.0), (float("nan"), 1.0)])
        assert isinstance(s, RatioSummary)
        assert s.mean == pytest.approx(0.5)
        assert s.used == 1
        assert s.dropped == 2

    def test_nothing_dropped_on_clean_pairs(self):
        s = summarize_ratios([(1.0, 2.0), (4.0, 2.0)])
        assert s.dropped == 0
        assert s.used == 2
        assert s.mean == pytest.approx(1.25)

    def test_all_dropped_is_nan_not_crash(self):
        s = summarize_ratios([(1.0, 0.0)])
        assert math.isnan(s.mean)
        assert (s.used, s.dropped) == (0, 1)

    def test_empty(self):
        s = summarize_ratios([])
        assert math.isnan(s.mean)
        assert (s.used, s.dropped) == (0, 0)

    def test_mean_matches_mean_of_ratios(self):
        pairs = [(1.0, 2.0), (9.0, 3.0), (2.0, 0.0)]
        assert summarize_ratios(pairs).mean == mean_of_ratios(pairs)

    def test_mean_of_ratios_warns_when_dropping(self, caplog, monkeypatch):
        # setup_logging() (run by any earlier CLI-driven test) stops
        # propagation at the "repro" logger; restore it so caplog's
        # root handler sees the record regardless of test order.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        with caplog.at_level("WARNING", logger="repro.core.metrics"):
            mean_of_ratios([(1.0, 0.0), (2.0, 4.0)])
        assert any("dropped 1 of 2" in r.getMessage() for r in caplog.records)

    def test_mean_of_ratios_silent_when_clean(self, caplog, monkeypatch):
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        with caplog.at_level("WARNING", logger="repro.core.metrics"):
            mean_of_ratios([(2.0, 4.0)])
        assert not caplog.records
