"""Tests for the flattened parallel sweep engine."""

import dataclasses

import pytest

from repro.core.cache import ResultCache
from repro.core.config import ExperimentConfig
from repro.core.parallel import SweepEngine, default_chunksize, run_grid
from repro.core.runner import compare_schemes, paired_nonadopter_penalty


def tiny(**kw):
    defaults = dict(
        n_clusters=4, nodes_per_cluster=16, duration=300.0,
        offered_load=2.0, drain=True, seed=8,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


def strip_wall(result):
    d = dataclasses.asdict(result)
    d.pop("wall_time_s")
    d.pop("phase_timings")
    return d


class TestRunGrid:
    def test_shape_and_replication_order(self):
        grids = run_grid([tiny(), tiny(scheme="R2")], 3)
        assert len(grids) == 2
        for per_config in grids:
            assert [r.replication for r in per_config] == [0, 1, 2]
        assert grids[1][0].scheme == "R2"

    def test_first_replication_offset(self):
        [results] = run_grid([tiny()], 2, first_replication=5)
        assert [r.replication for r in results] == [5, 6]

    def test_zero_replications_rejected(self):
        with pytest.raises(ValueError):
            run_grid([tiny()], 0)

    def test_empty_grid(self):
        assert run_grid([], 3) == []

    def test_duplicate_configs_simulated_once(self, monkeypatch):
        calls = []
        import repro.core.parallel as parallel

        real = parallel.run_single

        def counting(config, replication):
            calls.append((config.scheme, replication))
            return real(config, replication)

        monkeypatch.setattr(parallel, "run_single", counting)
        a, b, c = run_grid([tiny(), tiny(scheme="R2"), tiny()], 2)
        assert len(calls) == 4, "duplicate config must not be re-simulated"
        # Both duplicates see the same values nonetheless.
        assert [strip_wall(r) for r in a] == [strip_wall(r) for r in c]

    def test_shared_config_lists_are_independent(self):
        a, b = run_grid([tiny(), tiny()], 1)
        a.append("sentinel")
        assert len(b) == 1, "callers must not share list objects"

    def test_cache_fills_and_skips(self):
        cache = ResultCache(None)
        run_grid([tiny()], 2, cache=cache)
        assert cache.stats.stores == 2
        run_grid([tiny()], 2, cache=cache)
        assert cache.stats.hits == 2
        assert cache.stats.stores == 2, "warm run must not resimulate"

    def test_cached_equals_fresh(self):
        cache = ResultCache(None)
        [fresh] = run_grid([tiny()], 2, cache=cache)
        [cached] = run_grid([tiny()], 2, cache=cache)
        assert [strip_wall(r) for r in fresh] == [strip_wall(r) for r in cached]

    def test_progress_reports_every_task(self):
        messages = []
        run_grid([tiny(), tiny(scheme="ALL")], 2, progress=messages.append)
        assert len(messages) == 4
        assert any("ALL" in m for m in messages)


class TestHeartbeat:
    """The live per-chunk telemetry folded into progress lines."""

    def test_progress_lines_carry_online_stretch(self):
        messages = []
        run_grid([tiny(scheme="R2")], 2, progress=messages.append)
        # Every computed result feeds the running stretch estimate.
        assert all("stretch p50" in m and "p99" in m for m in messages)

    def test_warm_run_reports_cache_hit_rate(self):
        cache = ResultCache(None)
        run_grid([tiny()], 2, cache=cache)
        messages = []
        run_grid([tiny()], 2, cache=cache, progress=messages.append)
        assert len(messages) == 1
        assert "2/2" in messages[0] and "cache" in messages[0]

    def test_fmt_eta_ranges(self):
        from repro.core.parallel import _fmt_eta

        assert _fmt_eta(42.0) == "42s"
        assert _fmt_eta(190.0) == "3m10s"
        assert _fmt_eta(2 * 3600.0 + 5 * 60.0) == "2h05m"
        assert _fmt_eta(-3.0) == "0s"

    def test_suffix_weights_stretch_by_count(self):
        from repro.core.parallel import _Heartbeat

        def fake(count, p50, p99):
            class R:
                online_metrics = {
                    "metrics": {
                        "stretch": {
                            "count": count,
                            "quantiles": {"p50": p50, "p99": p99},
                        }
                    }
                }

            return R()

        hb = _Heartbeat(total=4, cache_hits=0)
        hb.observe(fake(1, 1.0, 2.0), computed=True)
        hb.observe(fake(3, 5.0, 10.0), computed=True)
        suffix = hb.suffix()
        # (1*1 + 3*5)/4 = 4, (1*2 + 3*10)/4 = 8
        assert "stretch p50 4 p99 8" in suffix
        assert "eta" in suffix  # 2 of 4 done, rate is known

    def test_suffix_empty_without_signal(self):
        from repro.core.parallel import _Heartbeat

        hb = _Heartbeat(total=2, cache_hits=0)

        class Bare:
            pass

        hb.observe(Bare(), computed=True)
        suffix = hb.suffix()
        assert "stretch" not in suffix and "cache" not in suffix

    def test_eta_counts_only_computed_remaining(self, monkeypatch):
        """Regression: the ETA must scale the *simulation* rate by the
        simulations still outstanding, not by every remaining task.  On
        a warm run, 8 instant cache hits must not multiply into the
        projection."""
        from repro.core import orchestrator

        clock = {"t": 0.0}
        monkeypatch.setattr(
            orchestrator.time, "perf_counter", lambda: clock["t"]
        )
        hb = orchestrator.Heartbeat(total=10, pending=2)
        for _ in range(8):  # warm tasks resolve instantly from cache
            hb.observe(object(), computed=False)
        clock["t"] = 5.0  # one real simulation took 5s
        hb.observe(object(), computed=True)
        # One computation left: the ETA is one rate interval, 5s.
        assert hb.eta_seconds() == pytest.approx(5.0)
        clock["t"] = 9.0
        hb.observe(object(), computed=True)
        assert hb.eta_seconds() is None, "nothing left to compute"

    def test_fully_warm_run_has_no_eta(self):
        cache = ResultCache(None)
        run_grid([tiny()], 2, cache=cache)
        messages = []
        run_grid([tiny()], 2, cache=cache, progress=messages.append)
        assert "eta" not in messages[0]

    def test_observe_counts_cache_hits_dynamically(self):
        """Regression: mid-run cache hits (``computed=False``) must be
        folded into the hit-rate, not silently dropped."""
        from repro.core.parallel import _Heartbeat

        hb = _Heartbeat(total=4)
        hb.observe(object(), computed=False)
        hb.observe(object(), computed=True)
        assert hb.cache_hits == 1
        assert hb.done == 2
        assert "cache 50%" in hb.suffix()

    def test_observe_tolerates_nan_free_payload_shapes(self):
        """Regression: the online payload contract serialises undefined
        values as ``None`` at *any* level; none of these may raise."""
        from repro.core.parallel import _Heartbeat

        shapes = [
            None,
            "not a dict",
            {},
            {"metrics": None},
            {"metrics": {"stretch": None}},
            {"metrics": {"stretch": {"count": 0}}},
            {"metrics": {"stretch": {"count": 2, "quantiles": None}}},
            {"metrics": {"stretch": {
                "count": 2, "quantiles": {"p50": None, "p99": 4.0},
            }}},
            {"metrics": {"stretch": {
                "count": 2,
                "quantiles": {"p50": float("nan"), "p99": float("nan")},
            }}},
        ]
        hb = _Heartbeat(total=len(shapes), cache_hits=0)
        for payload in shapes:
            record = type("R", (), {"online_metrics": payload})()
            hb.observe(record, computed=True)
        assert hb.computed == len(shapes)
        assert "stretch" not in hb.suffix(), "no valid sample arrived"


class TestParallelDeterminism:
    def test_run_grid_parallel_bit_identical_to_serial(self):
        serial = run_grid([tiny(), tiny(scheme="R2")], 2, n_workers=1)
        parallel = run_grid([tiny(), tiny(scheme="R2")], 2, n_workers=2)
        for s_cfg, p_cfg in zip(serial, parallel):
            assert [strip_wall(r) for r in s_cfg] == [
                strip_wall(r) for r in p_cfg
            ]

    def test_compare_schemes_four_workers_matches_serial(self):
        """The ISSUE's determinism criterion: identical RelativeMetrics."""
        cfg = tiny()
        schemes = ["R2", "ALL"]
        serial = compare_schemes(cfg, schemes, 4, n_workers=1)
        parallel = compare_schemes(cfg, schemes, 4, n_workers=4)
        for scheme in schemes:
            assert serial.relative(scheme) == parallel.relative(scheme)

    def test_explicit_chunksize(self):
        serial = run_grid([tiny()], 3, n_workers=1)
        chunked = run_grid([tiny()], 3, n_workers=2, chunksize=1)
        assert [strip_wall(r) for r in serial[0]] == [
            strip_wall(r) for r in chunked[0]
        ]

    def test_parallel_with_cache(self):
        cache = ResultCache(None)
        first = run_grid([tiny()], 3, n_workers=2, cache=cache)
        again = run_grid([tiny()], 3, n_workers=2, cache=cache)
        assert cache.stats.hits == 3
        assert [strip_wall(r) for r in first[0]] == [
            strip_wall(r) for r in again[0]
        ]


class TestDefaultChunksize:
    def test_small_grids_chunk_to_one(self):
        assert default_chunksize(3, 4) == 1

    def test_large_grids_amortise(self):
        assert default_chunksize(96, 4) == 6

    def test_degenerate(self):
        assert default_chunksize(0, 4) == 1


class TestSweepEngine:
    def test_bound_defaults(self):
        cache = ResultCache(None)
        engine = SweepEngine(n_workers=1, cache=cache)
        engine.run_replications(tiny(), 2)
        assert cache.stats.stores == 2
        [results] = engine.run_grid([tiny()], 2)
        assert cache.stats.hits == 2
        assert [r.replication for r in results] == [0, 1]


class TestPairedPenaltyGrid:
    def test_penalty_runs_through_grid(self):
        penalty = paired_nonadopter_penalty(
            tiny(), "ALL", adoption=0.5, n_replications=2
        )
        assert penalty == penalty, "penalty must be finite for a live workload"

    def test_penalty_uses_cache(self):
        cache = ResultCache(None)
        a = paired_nonadopter_penalty(
            tiny(), "ALL", adoption=0.5, n_replications=2, cache=cache
        )
        stores = cache.stats.stores
        b = paired_nonadopter_penalty(
            tiny(), "ALL", adoption=0.5, n_replications=2, cache=cache
        )
        assert cache.stats.stores == stores, "warm rerun must not simulate"
        assert a == b
