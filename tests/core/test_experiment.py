"""Integration tests for the single-experiment driver."""

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import run_single


def small(**kw):
    defaults = dict(
        n_clusters=3, nodes_per_cluster=16, duration=300.0,
        offered_load=2.0, drain=True, scheme="R2", seed=5,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


class TestRunSingle:
    def test_all_jobs_complete_with_drain(self):
        r = run_single(small(), 0, check_invariants=True)
        assert r.n_jobs == r.n_submitted_jobs
        assert r.completion_fraction == 1.0

    def test_truncation_excludes_incomplete(self):
        r = run_single(small(drain=False, offered_load=None), 0)
        assert r.n_jobs < r.n_submitted_jobs

    def test_deterministic(self):
        a = run_single(small(), 0)
        b = run_single(small(), 0)
        assert a.avg_stretch == b.avg_stretch
        assert [j.start_time for j in a.jobs] == [j.start_time for j in b.jobs]

    def test_replications_differ(self):
        a = run_single(small(), 0)
        b = run_single(small(), 1)
        assert a.avg_stretch != b.avg_stretch

    def test_common_random_numbers_across_schemes(self):
        """Workloads are identical across schemes for the same replication."""
        a = run_single(small(scheme="NONE"), 0)
        b = run_single(small(scheme="ALL"), 0)
        assert a.n_submitted_jobs == b.n_submitted_jobs
        ja = {j.job_id: (j.submit_time, j.nodes, j.runtime) for j in a.jobs}
        jb = {j.job_id: (j.submit_time, j.nodes, j.runtime) for j in b.jobs}
        common = set(ja) & set(jb)
        assert common
        assert all(ja[i] == jb[i] for i in common)

    def test_redundant_jobs_have_copies(self):
        r = run_single(small(scheme="R3"), 0)
        red = [j for j in r.jobs if j.uses_redundancy]
        assert red
        assert all(j.n_copies == 3 for j in red)

    def test_heterogeneous_platform(self):
        r = run_single(small(heterogeneous=True, scheme="HALF"), 0,
                       check_invariants=True)
        sizes = {c.total_nodes for c in r.clusters}
        assert sizes <= {16, 32, 64, 128, 256}
        assert r.n_jobs > 0

    @pytest.mark.parametrize("algorithm", ["fcfs", "easy", "cbf"])
    def test_all_algorithms_run(self, algorithm):
        r = run_single(small(algorithm=algorithm), 0, check_invariants=True)
        assert r.n_jobs > 0

    def test_cbf_produces_predictions(self):
        r = run_single(small(algorithm="cbf"), 0)
        assert all(j.predicted_wait_local is not None for j in r.jobs)
        assert all(j.predicted_wait_min is not None for j in r.jobs)
        # Min over copies can never exceed the local prediction.
        assert all(
            j.predicted_wait_min <= j.predicted_wait_local + 1e-9
            for j in r.jobs
        )

    def test_easy_produces_no_predictions(self):
        r = run_single(small(algorithm="easy"), 0)
        assert all(j.predicted_wait_local is None for j in r.jobs)

    def test_phi_estimates_pad_requests(self):
        r = run_single(small(estimates="phi"), 0)
        assert all(j.requested_time >= j.runtime for j in r.jobs)
        assert any(j.requested_time > j.runtime for j in r.jobs)

    def test_wall_time_recorded(self):
        r = run_single(small(), 0)
        assert r.wall_time_s > 0
