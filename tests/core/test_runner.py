"""Tests for replication sweeps and paired comparisons."""

import pytest

from repro.core.config import ExperimentConfig
from repro.core.runner import compare_schemes, run_replications


def tiny(**kw):
    defaults = dict(
        n_clusters=3, nodes_per_cluster=16, duration=300.0,
        offered_load=2.0, drain=True, seed=8,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


class TestRunReplications:
    def test_count_and_indices(self):
        rs = run_replications(tiny(), 3)
        assert [r.replication for r in rs] == [0, 1, 2]

    def test_first_replication_offset(self):
        rs = run_replications(tiny(), 2, first_replication=5)
        assert [r.replication for r in rs] == [5, 6]

    def test_zero_replications_rejected(self):
        with pytest.raises(ValueError):
            run_replications(tiny(), 0)

    def test_parallel_matches_serial(self):
        serial = run_replications(tiny(), 2, n_workers=1)
        parallel = run_replications(tiny(), 2, n_workers=2)
        assert [r.avg_stretch for r in serial] == [
            r.avg_stretch for r in parallel
        ]


class TestCompareSchemes:
    def test_structure(self):
        cmp_ = compare_schemes(tiny(), ["R2", "ALL"], 2)
        assert set(cmp_.per_scheme) == {"R2", "ALL"}
        assert len(cmp_.baseline) == 2
        rel = cmp_.relative("R2")
        assert rel.scheme == "R2"
        assert rel.n_replications == 2
        assert 0 < rel.avg_stretch < 10

    def test_baseline_is_none_scheme(self):
        cmp_ = compare_schemes(tiny(scheme="ALL"), ["R2"], 1)
        assert all(r.scheme == "NONE" for r in cmp_.baseline)

    def test_win_fraction_bounds(self):
        cmp_ = compare_schemes(tiny(), ["ALL"], 3)
        rel = cmp_.relative("ALL")
        assert 0.0 <= rel.win_fraction <= 1.0
        assert rel.worst_avg_stretch >= rel.avg_stretch - rel.avg_stretch_ratio_std * 3

    def test_progress_callback(self):
        messages = []
        compare_schemes(tiny(), ["R2"], 1, progress=messages.append)
        assert len(messages) == 2  # baseline + one scheme
        assert "NONE" in messages[0]

    def test_all_relative(self):
        cmp_ = compare_schemes(tiny(), ["R2", "R3"], 1)
        rel = cmp_.all_relative()
        assert set(rel) == {"R2", "R3"}


class TestDroppedRatios:
    """Degenerate baselines are counted, not silently skipped."""

    @staticmethod
    def _result(replication, jobs):
        from repro.core.results import ExperimentResult, JobOutcome

        outcomes = [
            JobOutcome(
                job_id=i, origin=0, winner_cluster=0, nodes=1,
                runtime=10.0, requested_time=10.0, submit_time=0.0,
                start_time=float(5 * i), end_time=float(5 * i) + 10.0,
                uses_redundancy=False, n_copies=1,
            )
            for i in range(jobs)
        ]
        return ExperimentResult(
            scheme="R2", algorithm="easy", n_clusters=1,
            replication=replication, jobs=outcomes,
        )

    def _comparison(self, baseline_jobs):
        from repro.core.runner import SchemeComparison

        cmp_ = SchemeComparison(
            base_config=tiny(), n_replications=2,
            baseline=[self._result(r, jobs) for r, jobs in
                      enumerate(baseline_jobs)],
        )
        cmp_.per_scheme["R2"] = [self._result(r, 3) for r in range(2)]
        return cmp_

    def test_clean_comparison_drops_nothing(self):
        rel = self._comparison([3, 3]).relative("R2")
        assert rel.dropped_ratios == 0

    def test_nan_baseline_counted_across_all_four_metrics(self, caplog):
        # Replication 1's baseline completed no jobs: all four paired
        # ratios for it are NaN and must be counted, with a warning.
        with caplog.at_level("WARNING", logger="repro.core.runner"):
            rel = self._comparison([3, 0]).relative("R2")
        assert rel.dropped_ratios == 4
        assert 0 < rel.avg_stretch  # the surviving replication still averages
        assert any("4 paired ratio(s)" in r.getMessage()
                   for r in caplog.records)
