"""Tests for redundancy schemes and target selection."""

import numpy as np
import pytest

from repro.core.schemes import (
    PAPER_SCHEME_ORDER,
    SCHEMES,
    RedundancyScheme,
    TargetSelector,
    geometric_bias_weights,
    get_scheme,
)


class TestSchemeDefinitions:
    @pytest.mark.parametrize(
        "name,n,expected",
        [
            ("NONE", 10, 1),
            ("R2", 10, 2),
            ("R3", 10, 3),
            ("R4", 10, 4),
            ("HALF", 10, 5),
            ("ALL", 10, 10),
            ("HALF", 5, 3),      # rounds to nearest
            ("HALF", 2, 1),
            ("R4", 3, 3),        # clamped to platform size
            ("ALL", 1, 1),
        ],
    )
    def test_copy_counts(self, name, n, expected):
        assert get_scheme(name).copies(n) == expected

    def test_lookup_case_insensitive(self):
        assert get_scheme("half") is SCHEMES["HALF"]

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            get_scheme("R99")

    def test_paper_order_covers_redundant_schemes(self):
        assert set(PAPER_SCHEME_ORDER) == set(SCHEMES) - {"NONE"}

    def test_is_redundant(self):
        assert not get_scheme("NONE").is_redundant
        assert all(get_scheme(s).is_redundant for s in PAPER_SCHEME_ORDER)

    def test_invalid_definitions_rejected(self):
        with pytest.raises(ValueError):
            RedundancyScheme("X", fixed_copies=2, fraction=0.5)
        with pytest.raises(ValueError):
            RedundancyScheme("X")
        with pytest.raises(ValueError):
            RedundancyScheme("X", fraction=1.5)
        with pytest.raises(ValueError):
            RedundancyScheme("X", fixed_copies=0)


class TestBiasWeights:
    def test_geometric_halving(self):
        w = geometric_bias_weights(4)
        assert w[0] == pytest.approx(2 * w[1])
        assert w[1] == pytest.approx(2 * w[2])
        assert w.sum() == pytest.approx(1.0)

    def test_papers_625_percent_anchor(self):
        """The paper quotes 6.25% (= 1/16) for low-weight clusters; in a
        pure halving chain over 10 clusters that is the 4th cluster's
        normalised weight."""
        w = geometric_bias_weights(10)
        assert w[3] == pytest.approx(0.0625, abs=0.001)
        # The bottom half of the platform is collectively rare (<13%).
        assert w[5:].sum() < 0.13

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            geometric_bias_weights(0)
        with pytest.raises(ValueError):
            geometric_bias_weights(5, ratio=0.0)


class TestTargetSelector:
    def make(self, scheme="R3", counts=(128,) * 10, weights=None, seed=0):
        return TargetSelector(
            get_scheme(scheme), counts, np.random.default_rng(seed),
            cluster_weights=weights,
        )

    def test_origin_always_first(self):
        sel = self.make()
        for origin in range(10):
            targets = sel.choose(origin, 4, uses_redundancy=True)
            assert targets[0] == origin

    def test_correct_copy_count(self):
        sel = self.make("R3")
        targets = sel.choose(0, 4, uses_redundancy=True)
        assert len(targets) == 3
        assert len(set(targets)) == 3  # no duplicates

    def test_non_redundant_job_local_only(self):
        sel = self.make("ALL")
        assert sel.choose(2, 4, uses_redundancy=False) == [2]

    def test_none_scheme_local_only(self):
        sel = self.make("NONE")
        assert sel.choose(2, 4, uses_redundancy=True) == [2]

    def test_all_scheme_targets_everyone(self):
        sel = self.make("ALL")
        targets = sel.choose(3, 4, uses_redundancy=True)
        assert sorted(targets) == list(range(10))

    def test_heterogeneous_eligibility(self):
        sel = self.make("ALL", counts=(256, 16, 64, 256))
        targets = sel.choose(0, 128, uses_redundancy=True)
        assert sorted(targets) == [0, 3]  # only the 256-node clusters

    def test_no_eligible_remote_falls_back_to_local(self):
        sel = self.make("R4", counts=(256, 16, 16, 16))
        assert sel.choose(0, 128, uses_redundancy=True) == [0]

    def test_job_too_big_for_origin_rejected(self):
        sel = self.make("R2", counts=(16, 256))
        with pytest.raises(ValueError):
            sel.choose(0, 64, uses_redundancy=True)

    def test_origin_out_of_range_rejected(self):
        sel = self.make()
        with pytest.raises(ValueError):
            sel.choose(10, 1, uses_redundancy=True)

    def test_uniform_selection_is_roughly_uniform(self):
        sel = self.make("R2", seed=11)
        counts = np.zeros(10)
        for _ in range(5000):
            t = sel.choose(0, 1, uses_redundancy=True)
            counts[t[1]] += 1
        # Remotes 1..9 should each get ~1/9 of the picks.
        probs = counts[1:] / 5000
        assert np.all(np.abs(probs - 1 / 9) < 0.02)

    def test_biased_selection_respects_weights(self):
        w = geometric_bias_weights(10)
        sel = self.make("R2", weights=w, seed=13)
        counts = np.zeros(10)
        n = 8000
        for _ in range(n):
            t = sel.choose(9, 1, uses_redundancy=True)  # origin last
            counts[t[1]] += 1
        # Cluster 0 should be picked about twice as often as cluster 1.
        assert counts[0] / counts[1] == pytest.approx(2.0, rel=0.15)

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            self.make("R2", weights=[0.5, 0.5])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            TargetSelector(
                get_scheme("R2"), (8, 8), np.random.default_rng(0),
                cluster_weights=[-1.0, 2.0],
            )

    def test_zero_weight_eligible_remotes_fall_back_to_uniform(self):
        # Origin carries all the weight; remotes all zero: redundancy
        # must still fan out rather than silently degrade.
        sel = TargetSelector(
            get_scheme("R2"), (8, 8, 8), np.random.default_rng(0),
            cluster_weights=[1.0, 0.0, 0.0],
        )
        targets = sel.choose(0, 1, uses_redundancy=True)
        assert len(targets) == 2
