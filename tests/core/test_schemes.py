"""Tests for redundancy schemes and target selection."""

import numpy as np
import pytest

from repro.core.schemes import (
    PAPER_SCHEME_ORDER,
    SCHEMES,
    RedundancyScheme,
    TargetSelector,
    geometric_bias_weights,
    get_scheme,
)


class TestSchemeDefinitions:
    @pytest.mark.parametrize(
        "name,n,expected",
        [
            ("NONE", 10, 1),
            ("R2", 10, 2),
            ("R3", 10, 3),
            ("R4", 10, 4),
            ("HALF", 10, 5),
            ("ALL", 10, 10),
            ("HALF", 5, 3),      # rounds to nearest
            ("HALF", 2, 2),      # fraction schemes never degrade to NONE
            ("R4", 3, 3),        # clamped to platform size
            ("ALL", 1, 1),
        ],
    )
    def test_copy_counts(self, name, n, expected):
        assert get_scheme(name).copies(n) == expected

    def test_lookup_case_insensitive(self):
        assert get_scheme("half") is SCHEMES["HALF"]

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            get_scheme("SOMETHING")

    def test_paper_order_covers_redundant_schemes(self):
        assert set(PAPER_SCHEME_ORDER) == set(SCHEMES) - {"NONE"}

    def test_is_redundant(self):
        assert not get_scheme("NONE").is_redundant
        assert all(get_scheme(s).is_redundant for s in PAPER_SCHEME_ORDER)

    def test_invalid_definitions_rejected(self):
        with pytest.raises(ValueError):
            RedundancyScheme("X", fixed_copies=2, fraction=0.5)
        with pytest.raises(ValueError):
            RedundancyScheme("X")
        with pytest.raises(ValueError):
            RedundancyScheme("X", fraction=1.5)
        with pytest.raises(ValueError):
            RedundancyScheme("X", fixed_copies=0)


class TestBiasWeights:
    def test_geometric_halving(self):
        w = geometric_bias_weights(4)
        assert w[0] == pytest.approx(2 * w[1])
        assert w[1] == pytest.approx(2 * w[2])
        assert w.sum() == pytest.approx(1.0)

    def test_papers_625_percent_anchor(self):
        """The paper quotes 6.25% (= 1/16) for low-weight clusters; in a
        pure halving chain over 10 clusters that is the 4th cluster's
        normalised weight."""
        w = geometric_bias_weights(10)
        assert w[3] == pytest.approx(0.0625, abs=0.001)
        # The bottom half of the platform is collectively rare (<13%).
        assert w[5:].sum() < 0.13

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            geometric_bias_weights(0)
        with pytest.raises(ValueError):
            geometric_bias_weights(5, ratio=0.0)


class TestTargetSelector:
    def make(self, scheme="R3", counts=(128,) * 10, weights=None, seed=0):
        return TargetSelector(
            get_scheme(scheme), counts, np.random.default_rng(seed),
            cluster_weights=weights,
        )

    def test_origin_always_first(self):
        sel = self.make()
        for origin in range(10):
            targets = sel.choose(origin, 4, uses_redundancy=True)
            assert targets[0] == origin

    def test_correct_copy_count(self):
        sel = self.make("R3")
        targets = sel.choose(0, 4, uses_redundancy=True)
        assert len(targets) == 3
        assert len(set(targets)) == 3  # no duplicates

    def test_non_redundant_job_local_only(self):
        sel = self.make("ALL")
        assert sel.choose(2, 4, uses_redundancy=False) == [2]

    def test_none_scheme_local_only(self):
        sel = self.make("NONE")
        assert sel.choose(2, 4, uses_redundancy=True) == [2]

    def test_all_scheme_targets_everyone(self):
        sel = self.make("ALL")
        targets = sel.choose(3, 4, uses_redundancy=True)
        assert sorted(targets) == list(range(10))

    def test_heterogeneous_eligibility(self):
        sel = self.make("ALL", counts=(256, 16, 64, 256))
        targets = sel.choose(0, 128, uses_redundancy=True)
        assert sorted(targets) == [0, 3]  # only the 256-node clusters

    def test_no_eligible_remote_falls_back_to_local(self):
        sel = self.make("R4", counts=(256, 16, 16, 16))
        assert sel.choose(0, 128, uses_redundancy=True) == [0]

    def test_job_too_big_for_origin_rejected(self):
        sel = self.make("R2", counts=(16, 256))
        with pytest.raises(ValueError):
            sel.choose(0, 64, uses_redundancy=True)

    def test_origin_out_of_range_rejected(self):
        sel = self.make()
        with pytest.raises(ValueError):
            sel.choose(10, 1, uses_redundancy=True)

    def test_uniform_selection_is_roughly_uniform(self):
        sel = self.make("R2", seed=11)
        counts = np.zeros(10)
        for _ in range(5000):
            t = sel.choose(0, 1, uses_redundancy=True)
            counts[t[1]] += 1
        # Remotes 1..9 should each get ~1/9 of the picks.
        probs = counts[1:] / 5000
        assert np.all(np.abs(probs - 1 / 9) < 0.02)

    def test_biased_selection_respects_weights(self):
        w = geometric_bias_weights(10)
        sel = self.make("R2", weights=w, seed=13)
        counts = np.zeros(10)
        n = 8000
        for _ in range(n):
            t = sel.choose(9, 1, uses_redundancy=True)  # origin last
            counts[t[1]] += 1
        # Cluster 0 should be picked about twice as often as cluster 1.
        assert counts[0] / counts[1] == pytest.approx(2.0, rel=0.15)

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            self.make("R2", weights=[0.5, 0.5])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            TargetSelector(
                get_scheme("R2"), (8, 8), np.random.default_rng(0),
                cluster_weights=[-1.0, 2.0],
            )

    def test_zero_weight_eligible_remotes_fall_back_to_uniform(self):
        # Origin carries all the weight; remotes all zero: redundancy
        # must still fan out rather than silently degrade.
        sel = TargetSelector(
            get_scheme("R2"), (8, 8, 8), np.random.default_rng(0),
            cluster_weights=[1.0, 0.0, 0.0],
        )
        targets = sel.choose(0, 1, uses_redundancy=True)
        assert len(targets) == 2


class TestGeneralisedSchemes:
    @pytest.mark.parametrize(
        "name,n,expected",
        [
            ("R5", 10, 5),
            ("R7", 10, 7),
            ("R7", 4, 4),        # clamped to platform size
            ("F0.25", 10, 3),    # rounds 2.5 up
            ("F0.25", 4, 2),     # floor of 1 lifted to the 2-copy promise
            ("F0.9", 10, 9),
            ("F1.0", 10, 10),    # synonym for ALL
        ],
    )
    def test_parsed_copy_counts(self, name, n, expected):
        assert get_scheme(name).copies(n) == expected

    @pytest.mark.parametrize("name", ["HALF", "ALL", "F0.25"])
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_fraction_schemes_never_degrade_to_none(self, name, n):
        """A fraction scheme on >= 2 clusters always fans out: the
        HALF-on-2-clusters rounding that silently degraded to NONE is
        pinned out."""
        copies = get_scheme(name).copies(n)
        assert 1 <= copies <= n
        if n >= 2:
            assert copies >= 2

    def test_parsed_schemes_are_redundant(self):
        assert get_scheme("R7").is_redundant
        assert get_scheme("F0.25").is_redundant

    @pytest.mark.parametrize("name", ["R0", "R-2", "F0.0", "F1.5", "Rx", "F"])
    def test_malformed_spec_rejected(self, name):
        with pytest.raises(ValueError, match="unknown scheme"):
            get_scheme(name)


class TestBalancedPlacement:
    def make(self, scheme="R3", counts=(128,) * 10, seed=0):
        return TargetSelector(
            get_scheme(scheme), counts, np.random.default_rng(seed),
            placement="balanced",
        )

    def test_deterministic_and_rng_free(self):
        # Balanced placement must not consume the selection stream:
        # the generator state is untouched after a choose().
        rng = np.random.default_rng(0)
        sel = TargetSelector(
            get_scheme("R2"), (8,) * 4, rng, placement="balanced"
        )
        before = rng.bit_generator.state
        a = sel.choose(0, 1, uses_redundancy=True)
        assert rng.bit_generator.state == before
        sel2 = TargetSelector(
            get_scheme("R2"), (8,) * 4, np.random.default_rng(99),
            placement="balanced",
        )
        assert sel2.choose(0, 1, uses_redundancy=True) == a

    def test_spreads_load_across_clusters(self):
        # Round-robin-by-assignment-count: over many picks from one
        # origin every remote receives (nearly) the same copy count.
        sel = self.make("R2", counts=(8,) * 5)
        counts = np.zeros(5)
        for _ in range(40):
            t = sel.choose(0, 1, uses_redundancy=True)
            counts[t[1]] += 1
        assert counts[1:].max() - counts[1:].min() <= 1

    def test_origin_still_first(self):
        sel = self.make("R3")
        targets = sel.choose(4, 1, uses_redundancy=True)
        assert targets[0] == 4
        assert len(set(targets)) == 3

    def test_balanced_with_weights_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            TargetSelector(
                get_scheme("R2"), (8, 8), np.random.default_rng(0),
                cluster_weights=[0.5, 0.5], placement="balanced",
            )

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            TargetSelector(
                get_scheme("R2"), (8, 8), np.random.default_rng(0),
                placement="sideways",
            )
