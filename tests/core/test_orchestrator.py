"""Tests for the sweep orchestrator: planning, recording, reassembly.

Executor behaviour is covered in ``test_executors.py``; here the
orchestrator is driven directly (or through the in-process executor
with a fake runner) so each responsibility — dedup, cache resolution,
chunk planning, idempotent recording, journaling, cancellation — is
pinned in isolation.
"""

import pytest

from repro.core.cache import ResultCache
from repro.core.config import ExperimentConfig
from repro.core.executors import InProcessExecutor
from repro.core.orchestrator import (
    GridStats,
    Orchestrator,
    SweepCancelled,
    TaskError,
    default_chunksize,
)
from repro.obs.manifest import RunJournal


def tiny(**kw):
    defaults = dict(
        n_clusters=4, nodes_per_cluster=16, duration=300.0,
        offered_load=2.0, drain=True, seed=8,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


class FakeResult:
    """Cheap stand-in for ExperimentResult (record() is shape-agnostic)."""

    def __init__(self, scheme, replication):
        self.scheme = scheme
        self.replication = replication

    def __eq__(self, other):
        return (self.scheme, self.replication) == (
            other.scheme, other.replication
        )

    def __hash__(self):
        return hash((self.scheme, self.replication))


def fake_runner(config, replication):
    return FakeResult(config.scheme, replication)


class TestPlanning:
    def test_dedup_collapses_equal_configs(self):
        orch = Orchestrator([tiny(), tiny(scheme="R2"), tiny()], 2)
        assert len(orch.unique) == 2
        assert orch.total == 4

    def test_prepare_is_idempotent(self):
        orch = Orchestrator([tiny()], 4, chunksize=2)
        first = orch.pending_chunks()
        orch.prepare()
        assert orch.pending_chunks() == first
        assert len(first) == 2

    def test_pending_chunks_returns_copies(self):
        orch = Orchestrator([tiny()], 2)
        chunks = orch.pending_chunks()
        next(iter(chunks.values())).append("sentinel")
        assert all(
            "sentinel" not in chunk
            for chunk in orch.pending_chunks().values()
        )

    def test_cache_hits_resolve_before_chunking(self):
        cache = ResultCache(None)
        orch = Orchestrator(
            [tiny()], 3, cache=cache, runner=fake_runner, chunksize=1,
        )
        orch.execute(InProcessExecutor())
        warm = Orchestrator([tiny()], 3, cache=cache, chunksize=1)
        warm.prepare()
        assert warm.pending_chunks() == {}
        assert warm.done == 3
        # No executor needed: assemble directly from the cache.
        [results] = warm.assemble()
        assert [r.replication for r in results] == [0, 1, 2]

    def test_chunksize_defaults_from_pending_not_total(self):
        """A mostly-warm grid must chunk over what is *left*."""
        cache = ResultCache(None)
        cold = Orchestrator(
            [tiny()], 8, cache=cache, runner=fake_runner, n_workers=2,
        )
        cold.execute(InProcessExecutor())
        # Invalidate exactly one replication by asking for a fresh rep.
        warm = Orchestrator(
            [tiny()], 9, cache=cache, n_workers=2,
        )
        warm.prepare()
        chunks = warm.pending_chunks()
        assert sum(len(c) for c in chunks.values()) == 1
        assert default_chunksize(1, 1) == 1


class TestRecording:
    def test_record_is_idempotent(self):
        orch = Orchestrator([tiny()], 2, chunksize=1)
        orch.prepare()
        result = FakeResult("NONE", 0)
        orch.record(0, 0, result)
        orch.record(0, 0, FakeResult("OTHER", 0))  # late duplicate
        orch.record(0, 1, FakeResult("NONE", 1))
        [results] = orch.assemble()
        assert results[0] is result, "first completion wins"
        assert orch.heartbeat.computed == 2, "duplicate not recounted"

    def test_progress_lines_and_chunk_accounting(self):
        messages = []
        orch = Orchestrator(
            [tiny()], 2, chunksize=2, progress=messages.append,
        )
        orch.prepare()
        assert orch.status()["chunks_open"] == 1
        orch.record(0, 0, FakeResult("NONE", 0))
        assert orch.status()["chunks_open"] == 1, "chunk still has rep 1"
        orch.record(0, 1, FakeResult("NONE", 1))
        assert orch.status()["chunks_open"] == 0
        assert len(messages) == 2
        assert "[2/2]" in messages[1]

    def test_assemble_names_the_first_missing_task(self):
        orch = Orchestrator([tiny()], 3)
        orch.prepare()
        orch.record(0, 0, FakeResult("NONE", 0))
        with pytest.raises(TaskError, match="rep 1") as err:
            orch.assemble()
        assert "2 task(s) missing" in err.value.cause

    def test_duplicate_configs_share_results_not_lists(self):
        orch = Orchestrator(
            [tiny(), tiny()], 1, runner=fake_runner,
        )
        a, b = orch.execute(InProcessExecutor())
        assert a == b
        a.append("sentinel")
        assert len(b) == 1


class TestJournal:
    def test_lifecycle_events(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        orch = Orchestrator(
            [tiny()], 2, chunksize=1, runner=fake_runner, journal=journal,
        )
        orch.execute(InProcessExecutor())
        events = [e["event"] for e in journal.entries()]
        assert events == ["prepared", "execute", "chunk_done", "chunk_done"]
        prepared = journal.entries()[0]
        assert prepared["total"] == 2
        assert prepared["pending"] == 2
        done_events = [
            e for e in journal.entries() if e["event"] == "chunk_done"
        ]
        assert [e["tasks"] for e in done_events] == [[[0, 0]], [[0, 1]]]

    def test_warm_run_journals_no_execute(self, tmp_path):
        cache = ResultCache(None)
        Orchestrator(
            [tiny()], 2, cache=cache, runner=fake_runner,
        ).execute(InProcessExecutor())
        journal = RunJournal(tmp_path / "journal.jsonl")
        warm = Orchestrator(
            [tiny()], 2, cache=cache, journal=journal,
        )
        warm.execute(InProcessExecutor())
        events = [e["event"] for e in journal.entries()]
        assert events == ["prepared"], "nothing to execute on a warm run"

    def test_journal_sequence_resumes(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        first = RunJournal(path)
        first.append({"event": "a"})
        second = RunJournal(path)
        second.append({"event": "b"})
        entries = RunJournal(path).entries()
        assert [e["seq"] for e in entries] == [0, 1]

    def test_journal_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.append({"event": "a"})
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"event": "torn')  # no newline, invalid JSON
        entries = RunJournal(path).entries()
        assert [e["event"] for e in entries] == ["a"]


class TestCancellation:
    def test_cancel_surfaces_as_sweep_cancelled(self):
        orch = Orchestrator([tiny()], 4, runner=fake_runner, chunksize=1)
        orch.prepare()

        def cancelling_runner(config, replication):
            orch.cancel()
            return fake_runner(config, replication)

        orch.runner = cancelling_runner
        with pytest.raises(SweepCancelled):
            orch.execute(InProcessExecutor())
        assert orch.status()["cancelled"] is True

    def test_stats_flow_through(self):
        stats = GridStats()
        orch = Orchestrator(
            [tiny()], 2, runner=fake_runner, stats=stats,
        )
        orch.execute(InProcessExecutor())
        assert stats.as_dict() == {"task_failures": {}, "task_retries": 0}
