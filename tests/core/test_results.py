"""Tests for result containers."""

import math

import pytest

from repro.core.results import (
    ClusterOutcome,
    ExperimentResult,
    JobOutcome,
    merge_results,
)


def outcome(job_id=0, origin=0, winner=0, runtime=10.0, submit=0.0,
            start=5.0, redundant=False, copies=1, **kw):
    return JobOutcome(
        job_id=job_id,
        origin=origin,
        winner_cluster=winner,
        nodes=4,
        runtime=runtime,
        requested_time=runtime,
        submit_time=submit,
        start_time=start,
        end_time=start + runtime,
        uses_redundancy=redundant,
        n_copies=copies,
        **kw,
    )


def result(jobs, **kw):
    defaults = dict(scheme="R2", algorithm="easy", n_clusters=2, replication=0)
    defaults.update(kw)
    return ExperimentResult(jobs=jobs, **defaults)


class TestJobOutcome:
    def test_derived_times(self):
        j = outcome(submit=10.0, start=30.0, runtime=20.0)
        assert j.wait_time == 20.0
        assert j.turnaround == 40.0
        assert j.stretch == 2.0

    def test_bounded_slowdown(self):
        j = outcome(runtime=1.0, submit=0.0, start=99.0)
        assert j.stretch == 100.0
        assert j.bounded_slowdown == 10.0

    def test_ran_remotely(self):
        assert outcome(origin=0, winner=1).ran_remotely
        assert not outcome(origin=0, winner=0).ran_remotely


class TestSelections:
    def make(self):
        return result([
            outcome(0, redundant=True, start=1.0),
            outcome(1, redundant=False, start=9.0),
            outcome(2, redundant=True, start=3.0),
        ])

    def test_select_all(self):
        assert len(self.make().select()) == 3

    def test_select_by_redundancy(self):
        r = self.make()
        assert [j.job_id for j in r.select(redundant=True)] == [0, 2]
        assert [j.job_id for j in r.select(redundant=False)] == [1]

    def test_stretches_vector(self):
        r = self.make()
        assert len(r.stretches()) == 3
        assert len(r.stretches(redundant=True)) == 2


class TestAggregates:
    def test_avg_and_max_stretch(self):
        r = result([outcome(start=0.0), outcome(start=30.0)])  # stretch 1, 4
        assert r.avg_stretch == pytest.approx(2.5)
        assert r.max_stretch == pytest.approx(4.0)

    def test_cv_stretch(self):
        r = result([outcome(start=0.0), outcome(start=30.0)])
        assert r.cv_stretch == pytest.approx(100.0 * 1.5 / 2.5)

    def test_empty_results_nan(self):
        r = result([])
        assert math.isnan(r.avg_stretch)
        assert math.isnan(r.avg_turnaround)

    def test_completion_fraction(self):
        r = result([outcome()], n_submitted_jobs=4)
        assert r.completion_fraction == 0.25

    def test_queue_stats(self):
        r = result(
            [],
            clusters=[
                ClusterOutcome(0, 128, 10, 2, 5, 5, 40),
                ClusterOutcome(1, 128, 12, 1, 6, 6, 60),
            ],
        )
        assert r.max_queue_length == 60
        assert r.avg_max_queue_length == 50.0

    def test_remote_fraction(self):
        r = result([
            outcome(0, redundant=True, winner=1),
            outcome(1, redundant=True, winner=0),
            outcome(2, redundant=False, winner=0),
        ])
        assert r.remote_fraction() == 0.5

    def test_remote_fraction_no_redundant_jobs(self):
        assert math.isnan(result([outcome()]).remote_fraction())


class TestMerge:
    def test_merge_checks_config_consistency(self):
        a = result([outcome()])
        b = result([outcome()], scheme="ALL")
        with pytest.raises(ValueError, match="different configurations"):
            merge_results([a, b])

    def test_merge_accepts_matching(self):
        a = result([outcome()], replication=0)
        b = result([outcome()], replication=1)
        assert len(merge_results([a, b])) == 2

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_results([])

    def test_merge_rejects_duplicate_replication(self):
        """A replication fed twice (kept retry, cache double-count) would
        silently bias every sweep mean — it must be an error."""
        a = result([outcome()], replication=3)
        b = result([outcome()], replication=3)
        with pytest.raises(ValueError, match="duplicate replication"):
            merge_results([a, b])

    def test_merge_duplicate_error_names_the_cell(self):
        a = result([outcome()], replication=7)
        with pytest.raises(ValueError, match=r"replication=7"):
            merge_results([a, a])

    def test_merge_same_replication_index_needs_same_config_first(self):
        """Config mixing is reported before duplication (first wins)."""
        a = result([outcome()], replication=0)
        b = result([outcome()], scheme="ALL", replication=0)
        with pytest.raises(ValueError, match="different configurations"):
            merge_results([a, b])
