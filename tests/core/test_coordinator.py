"""Tests for the first-start-wins redundancy protocol."""

import pytest

from repro.cluster.platform import Platform
from repro.core.coordinator import Coordinator, InvariantError
from repro.sched.job import RequestState
from repro.sim.engine import Simulator
from repro.workload.stream import StreamJob


def job(origin=0, arrival=0.0, nodes=4, runtime=10.0, requested=None,
        redundant=True):
    return StreamJob(
        origin=origin,
        arrival=arrival,
        nodes=nodes,
        runtime=runtime,
        requested_time=requested if requested is not None else runtime,
        uses_redundancy=redundant,
    )


@pytest.fixture
def setup():
    sim = Simulator()
    platform = Platform(sim, [8, 8, 8], algorithm="easy")
    coord = Coordinator(sim, platform)
    return sim, platform, coord


class TestProtocol:
    def test_winner_and_losers(self, setup):
        sim, platform, coord = setup
        # Block cluster 0 so the copy on cluster 1 wins.
        blocker = job(origin=0, nodes=8, runtime=100.0, redundant=False)
        coord.schedule_job(blocker, [0])
        j = job(origin=0, arrival=1.0, nodes=8)
        coord.schedule_job(j, [0, 1])
        sim.run()
        rj = coord.jobs[1]
        assert rj.winner is not None
        assert rj.winner.cluster.cluster.index == 1
        loser = rj.requests[0]
        assert loser.state is RequestState.CANCELLED
        assert loser.cancelled_at == 1.0  # cancelled the instant the win happened

    def test_no_duplicate_starts_with_zero_latency(self, setup):
        sim, platform, coord = setup
        # Both clusters idle: both copies could start at the same instant;
        # deterministic ordering must let exactly one win.
        j = job(origin=0, nodes=4)
        coord.schedule_job(j, [0, 1, 2])
        sim.run()
        assert coord.duplicate_starts == []
        rj = coord.jobs[0]
        states = sorted(r.state.value for r in rj.requests)
        assert states == ["cancelled", "cancelled", "completed"]

    def test_metrics_from_winner(self, setup):
        sim, platform, coord = setup
        j = job(origin=0, nodes=4, runtime=10.0)
        coord.schedule_job(j, [0, 1])
        sim.run()
        rj = coord.jobs[0]
        assert rj.completed
        assert rj.winner.start_time == 0.0
        assert rj.winner.end_time == 10.0

    def test_single_target_non_redundant(self, setup):
        sim, platform, coord = setup
        j = job(redundant=False)
        coord.schedule_job(j, [0])
        sim.run()
        rj = coord.jobs[0]
        assert not rj.uses_redundancy
        assert rj.n_copies == 1
        assert coord.total_cancellations == 0

    def test_counters(self, setup):
        sim, platform, coord = setup
        for i in range(5):
            coord.schedule_job(job(arrival=float(i)), [0, 1, 2])
        sim.run()
        assert coord.total_requests == 15
        assert coord.total_cancellations == 10
        assert coord.unfinished_jobs() == []
        coord.check_invariants()

    def test_targets_must_start_with_origin(self, setup):
        sim, platform, coord = setup
        with pytest.raises(ValueError, match="origin"):
            coord.submit_job(job(origin=0), [1, 0])

    def test_empty_targets_rejected(self, setup):
        sim, platform, coord = setup
        with pytest.raises(ValueError):
            coord.submit_job(job(), [])


class TestRemoteInflation:
    def test_remote_copies_padded(self):
        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        coord = Coordinator(sim, platform, remote_inflation=0.5)
        j = job(origin=0, nodes=4, runtime=10.0, requested=20.0)
        coord.schedule_job(j, [0, 1])
        sim.run()
        rj = coord.jobs[0]
        local, remote = rj.requests
        assert local.requested_time == 20.0
        assert remote.requested_time == pytest.approx(30.0)

    def test_negative_inflation_rejected(self):
        sim = Simulator()
        platform = Platform(sim, [8])
        with pytest.raises(ValueError):
            Coordinator(sim, platform, remote_inflation=-0.1)


class TestCancellationLatency:
    def test_duplicate_start_possible_with_latency(self):
        """With a cancellation delay, a sibling can start in the window;
        the protocol must count it as waste, not crash."""
        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        coord = Coordinator(sim, platform, cancellation_latency=5.0)
        # Cluster 1 is busy until t=2; the local copy starts at t=0, the
        # remote one at t=2 < 0 + 5s latency.
        blocker = job(origin=1, nodes=8, runtime=2.0, redundant=False)
        coord.schedule_job(blocker, [1])
        j = job(origin=0, nodes=8, runtime=10.0)
        coord.schedule_job(j, [0, 1])
        sim.run()
        rj = coord.jobs[1]
        assert rj.winner.cluster.cluster.index == 0
        assert len(coord.duplicate_starts) == 1
        dup = coord.duplicate_starts[0]
        assert dup.state is RequestState.COMPLETED  # ran to waste

    def test_latency_cancel_still_removes_pending(self):
        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        coord = Coordinator(sim, platform, cancellation_latency=1.0)
        blocker = job(origin=1, nodes=8, runtime=50.0, redundant=False)
        coord.schedule_job(blocker, [1])
        j = job(origin=0, nodes=8, runtime=10.0)
        coord.schedule_job(j, [0, 1])
        sim.run()
        rj = coord.jobs[1]
        remote = rj.requests[1]
        assert remote.state is RequestState.CANCELLED
        assert remote.cancelled_at == pytest.approx(1.0)  # start 0 + latency

    def test_negative_latency_rejected(self):
        sim = Simulator()
        platform = Platform(sim, [8])
        with pytest.raises(ValueError):
            Coordinator(sim, platform, cancellation_latency=-1.0)

    def test_finalize_purges_losers_cancelled_past_horizon(self):
        """Regression: a job winning inside the final latency window left
        its losers PENDING forever (the cancel event lay past the horizon
        of a non-drained run)."""
        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        coord = Coordinator(sim, platform, cancellation_latency=2.0)
        # Cluster 1 stays busy past the horizon so its copy is a real
        # pending loser (not a same-instant duplicate start).
        blocker = job(origin=1, nodes=8, runtime=50.0, redundant=False)
        coord.schedule_job(blocker, [1])
        j = job(origin=0, nodes=8, runtime=10.0)
        coord.schedule_job(j, [0, 1])
        sim.run(until=1.0)  # winner starts at t=0; cancel due at t=2
        rj = coord.jobs[1]
        loser = next(r for r in rj.requests if r is not rj.winner)
        assert loser.state is RequestState.PENDING  # the bug's symptom
        coord.finalize()
        assert loser.state is RequestState.CANCELLED
        coord.check_invariants()

    def test_finalize_noop_at_zero_latency(self):
        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        coord = Coordinator(sim, platform)
        coord.schedule_job(job(origin=0, nodes=8), [0, 1])
        sim.run()
        cancellations = coord.total_cancellations
        coord.finalize()
        assert coord.total_cancellations == cancellations


class TestInvariants:
    def test_violation_raises_explicit_error(self, setup):
        sim, platform, coord = setup
        coord.schedule_job(job(origin=0, nodes=4), [0, 1])
        sim.run()
        rj = coord.jobs[0]
        # Corrupt the protocol state: crown a cancelled loser.
        rj.winner = next(
            r for r in rj.requests if r.state is RequestState.CANCELLED
        )
        with pytest.raises(InvariantError, match="expected one of"):
            coord.check_invariants()

    def test_error_identifies_job_and_request(self, setup):
        sim, platform, coord = setup
        coord.schedule_job(job(origin=0, nodes=4), [0, 1])
        sim.run()
        rj = coord.jobs[0]
        loser = next(r for r in rj.requests if r is not rj.winner)
        rj.winner = loser
        with pytest.raises(InvariantError, match=f"job {rj.job_id}"):
            coord.check_invariants()

    def test_invariant_error_is_an_assertion(self):
        # Callers that caught AssertionError keep working.
        assert issubclass(InvariantError, AssertionError)


class TestWasteAccounting:
    """Regression pin for duplicate-start waste attribution.

    With every cancellation lost (``p_cancel_loss=1.0``) under ALL on k
    clusters, all k copies of every started job run to completion: the
    k-1 losers are pure waste.  The ledger must therefore show wasted
    node-seconds of exactly (k-1)x the useful node-seconds, i.e. a
    wasted-work fraction of (k-1)/k — any drift means duplicates are
    double-counted or under-charged.
    """

    def test_all_copies_lost_cancel_waste_identity(self):
        from repro.core.config import ExperimentConfig
        from repro.core.experiment import run_single
        from repro.faults import FaultConfig

        k = 3
        cfg = ExperimentConfig(
            n_clusters=k,
            nodes_per_cluster=16,
            duration=300.0,
            offered_load=2.0,
            drain=True,
            seed=20060619,
            scheme="ALL",
            faults=FaultConfig(p_cancel_loss=1.0),
        )
        r = run_single(cfg, 0, check_invariants=True)
        assert r.lost_cancellations > 0
        assert r.useful_node_seconds > 0
        assert r.wasted_node_seconds == pytest.approx(
            (k - 1) * r.useful_node_seconds
        )
        assert r.wasted_work_fraction == pytest.approx((k - 1) / k)


class TestResubmitAfterFinalize:
    """An outage recovery straddling the horizon must not resubmit."""

    def _dropped_copy(self):
        sim = Simulator()
        platform = Platform(sim, [8, 8], algorithm="easy")
        coord = Coordinator(sim, platform)
        # Block both clusters far past the horizon so the redundant
        # job's copies stay PENDING (winner never crowned).
        for origin in (0, 1):
            coord.schedule_job(
                job(origin=origin, nodes=8, runtime=1000.0, redundant=False),
                [origin],
            )
        j = job(origin=0, arrival=1.0, nodes=8)
        coord.schedule_job(j, [0, 1])
        # Outage at t=5 loses cluster 1's queue (the pending copy).
        sim.at(5.0, lambda: platform.schedulers[1].go_down(drop_queue=True))
        sim.at(10.0, lambda: platform.schedulers[1].come_up())
        sim.run(until=300.0)
        rj = coord.jobs[2]
        lost = next(
            r for r in rj.requests if r.cluster is platform.schedulers[1]
        )
        assert rj.winner is None
        return sim, coord, rj, lost

    def test_pre_finalize_resubmission_works(self):
        sim, coord, rj, lost = self._dropped_copy()
        before = coord.total_requests
        coord._try_resubmit(rj, lost.copy_spec(), 1)
        assert coord.resubmissions == 1
        assert coord.total_requests == before + 1

    def test_post_finalize_resubmission_refused(self):
        sim, coord, rj, lost = self._dropped_copy()
        before = coord.total_requests
        coord.finalize()
        # A recovery callback scheduled past the horizon fires while the
        # event queue drains after finalize(): it must be a no-op.
        coord._try_resubmit(rj, lost.copy_spec(), 1)
        assert coord.resubmissions == 0
        assert coord.total_requests == before
        assert len(rj.requests) == 2
