"""Tests for replication statistics."""

import math

import numpy as np
import pytest

from repro.analysis.stats import (
    coefficient_of_variation,
    mean_ci,
    paired_ratio_ci,
    sign_test,
)


class TestMeanCI:
    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(200):
            sample = rng.normal(10.0, 2.0, size=20)
            if mean_ci(sample, 0.95).contains(10.0):
                hits += 1
        assert hits / 200 == pytest.approx(0.95, abs=0.05)

    def test_width_shrinks_with_n(self):
        rng = np.random.default_rng(1)
        small = mean_ci(rng.normal(0, 1, 10))
        large = mean_ci(rng.normal(0, 1, 1000))
        assert large.half_width < small.half_width

    def test_single_value_infinite_width(self):
        ci = mean_ci([5.0])
        assert ci.mean == 5.0
        assert math.isinf(ci.lower) and math.isinf(ci.upper)

    def test_empty_is_nan(self):
        ci = mean_ci([])
        assert ci.n == 0 and math.isnan(ci.mean)

    def test_non_finite_filtered(self):
        ci = mean_ci([1.0, float("nan"), 3.0, float("inf")])
        assert ci.n == 2
        assert ci.mean == 2.0

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            mean_ci([1.0, 2.0], confidence=1.0)

    def test_str_renders(self):
        assert "95%" in str(mean_ci([1.0, 2.0, 3.0]))


class TestPairedRatio:
    def test_basic(self):
        ci = paired_ratio_ci([1.0, 2.0], [2.0, 2.0])
        assert ci.mean == pytest.approx(0.75)

    def test_zero_baseline_dropped(self):
        ci = paired_ratio_ci([1.0, 2.0], [0.0, 2.0])
        assert ci.n == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_ratio_ci([1.0], [1.0, 2.0])


class TestSignTest:
    def test_counts(self):
        r = sign_test([1, 2, 3, 4], [2, 2, 2, 2])
        assert (r.wins, r.losses, r.ties) == (1, 2, 1)
        assert r.win_fraction == pytest.approx(1 / 3)

    def test_systematic_advantage_significant(self):
        values = [0.8] * 20
        baselines = [1.0] * 20
        r = sign_test(values, baselines)
        assert r.wins == 20
        assert r.p_value < 1e-4

    def test_no_signal_not_significant(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 30)
        b = rng.normal(0, 1, 30)
        r = sign_test(a, b)
        assert r.p_value > 0.01

    def test_all_ties(self):
        r = sign_test([1.0, 1.0], [1.0, 1.0])
        assert r.p_value == 1.0
        assert math.isnan(r.win_fraction)


class TestCV:
    def test_value(self):
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(50.0)

    def test_degenerate(self):
        assert math.isnan(coefficient_of_variation([]))
        assert math.isnan(coefficient_of_variation([0.0, 0.0]))
