"""Tests for text-table rendering."""

import pytest

from repro.analysis.tables import Table, format_cell


class TestFormatCell:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, "-"),
            ("x", "x"),
            (3, "3"),
            (1.234, "1.23"),
            (float("nan"), "nan"),
        ],
    )
    def test_basic(self, value, expected):
        assert format_cell(value) == expected

    def test_precision(self):
        assert format_cell(1.23456, precision=4) == "1.2346"

    def test_scientific_for_extremes(self):
        assert "e" in format_cell(1e7)
        assert "e" in format_cell(1e-5)
        assert format_cell(0.0) == "0.00"


class TestTable:
    def make(self):
        t = Table("Demo", columns=["A", "B"])
        t.add_row("row1", [1.0, 2.0])
        t.add_row("row2", [3.5, None])
        return t

    def test_text_contains_everything(self):
        text = self.make().to_text()
        assert "Demo" in text
        for token in ("A", "B", "row1", "row2", "1.00", "3.50", "-"):
            assert token in text

    def test_alignment(self):
        lines = self.make().to_text().splitlines()
        body = [l for l in lines if l.startswith("row")]
        assert len({len(l) for l in body}) == 1  # equal widths

    def test_wrong_arity_rejected(self):
        t = Table("T", columns=["A"])
        with pytest.raises(ValueError):
            t.add_row("r", [1, 2])

    def test_markdown(self):
        md = self.make().to_markdown()
        assert md.startswith("**Demo**")
        assert "| row1 | 1.00 | 2.00 |" in md

    def test_column_access(self):
        t = self.make()
        assert t.column("A") == [1.0, 3.5]
        with pytest.raises(ValueError):
            t.column("Z")

    def test_cell_access(self):
        t = self.make()
        assert t.cell("row2", "A") == 3.5
        with pytest.raises(KeyError):
            t.cell("nope", "A")
