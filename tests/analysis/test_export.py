"""Tests for CSV/JSON export."""

import json

import pytest

from repro.analysis.export import (
    read_results_csv,
    report_to_json,
    results_to_csv,
    table_to_csv,
)
from repro.analysis.registry import ExperimentReport
from repro.analysis.tables import Table
from repro.core.config import ExperimentConfig
from repro.core.experiment import run_single


@pytest.fixture(scope="module")
def result():
    cfg = ExperimentConfig(
        n_clusters=2, nodes_per_cluster=16, duration=200.0,
        offered_load=2.0, drain=True, scheme="R2", seed=1,
    )
    return run_single(cfg, 0)


class TestTableCSV:
    def test_round_trippable_content(self, tmp_path):
        t = Table("Demo", columns=["A", "B"])
        t.add_row("r1", [1.5, None])
        path = tmp_path / "t.csv"
        table_to_csv(t, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("Demo")
        assert "r1,1.5," in lines[2]


class TestReportJSON:
    def test_serialises_nan_and_tables(self, tmp_path):
        t = Table("T", columns=["A"])
        t.add_row("r", [float("nan")])
        report = ExperimentReport(
            exp_id="x", title="t", paper_expectation="e",
            tables=[t], data={"v": float("inf"), "k": {1: 2}},
        )
        path = tmp_path / "r.json"
        report_to_json(report, path)
        payload = json.loads(path.read_text())
        assert payload["exp_id"] == "x"
        assert payload["data"]["v"] is None        # inf -> null
        assert payload["data"]["k"] == {"1": 2}    # int keys stringified
        assert payload["tables"][0]["rows"][0]["values"] == [None]


class TestResultsCSV:
    def test_round_trip(self, result, tmp_path):
        path = tmp_path / "jobs.csv"
        n = results_to_csv([result], path)
        assert n == result.n_jobs
        rows = read_results_csv(path)
        assert len(rows) == n
        assert rows[0]["scheme"] == "R2"
        assert float(rows[0]["stretch"]) >= 1.0

    def test_multiple_results(self, result, tmp_path):
        path = tmp_path / "jobs.csv"
        n = results_to_csv([result, result], path)
        assert n == 2 * result.n_jobs
