"""Tests for the experiment registry (structure + tiny smoke runs)."""

import pytest

from repro.analysis.registry import (
    REGISTRY,
    SCALES,
    Scale,
    calibrated_config,
    current_scale,
    run_experiment,
)

#: a deliberately tiny scale so registry smoke tests stay fast
TINY = Scale(
    name="tiny",
    duration=300.0,
    n_replications=1,
    fig1_sites=(2, 4),
    fig3_alphas=(10.23,),
    fig4_fractions=(0.0, 1.0),
    churn_queue_sizes=(0, 20000),
    churn_duration=60.0,
    load_study_duration=600.0,
    faults_p_loss=(0.0, 1.0),
    faults_outage_rates=(0.0,),
    phase_degrees=(2,),
    phase_regimes=("lublin",),
    phase_loads=(1.8,),
    phase_duration=300.0,
    knee_loads=(0.6, 2.4),
    knee_duration=300.0,
)


class TestStructure:
    def test_all_paper_artifacts_registered(self):
        expected = {"fig1", "fig2", "fig3", "fig4", "fig5",
                    "tab1", "tab2", "tab3", "tab4", "sec4", "sec312",
                    "faults", "phase", "knee"}
        assert expected == set(REGISTRY)

    def test_scales_defined(self):
        assert set(SCALES) == {"smoke", "default", "paper"}
        assert SCALES["paper"].n_replications == 50
        assert SCALES["paper"].duration == 6 * 3600.0

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")

    def test_calibrated_config_defaults(self):
        cfg = calibrated_config(TINY)
        assert cfg.offered_load == 2.0
        assert cfg.drain is True
        assert cfg.duration == 300.0


class TestSmokeRuns:
    """Each report renders and exposes the data keys benches rely on."""

    def test_sec4(self):
        rep = run_experiment("sec4", TINY)
        assert rep.data["scheduler_max_r"] >= 25
        assert rep.data["middleware_max_r"] == 2
        assert rep.data["bottleneck"] == "middleware"
        assert "r < 3" not in rep.render() or True
        assert rep.render()

    def test_fig5(self):
        rep = run_experiment("fig5", TINY)
        avg = rep.data["average"]
        assert avg[0] > avg[20000]
        assert set(rep.data["real_schedulers"]) == {"fcfs", "easy", "cbf"}
        assert rep.render()

    def test_tab2(self):
        rep = run_experiment("tab2", TINY)
        assert set(rep.data["relative_avg_stretch"]) == {"R2", "R3", "R4",
                                                         "HALF"}
        assert rep.render()

    def test_fig1_and_fig2_share_sweep(self):
        rep1 = run_experiment("fig1", TINY)
        rep2 = run_experiment("fig2", TINY)
        assert set(rep1.data["relative_avg_stretch"]) == {
            "R2", "R3", "R4", "HALF", "ALL"
        }
        assert rep1.render() and rep2.render()

    def test_tab1(self):
        rep = run_experiment("tab1", TINY)
        assert len(rep.data["cells"]) == 6
        assert all(
            "avg_stretch" in v and "cv_stretch" in v
            for v in rep.data["cells"].values()
        )
        assert rep.render()

    def test_tab3(self):
        rep = run_experiment("tab3", TINY)
        assert set(rep.data) == {"R2", "R3", "R4", "HALF", "ALL"}
        assert rep.render()

    def test_tab4(self):
        rep = run_experiment("tab4", TINY)
        assert rep.data["baseline"] > 0
        assert rep.render()

    def test_fig3(self):
        rep = run_experiment("fig3", TINY)
        series = rep.data["relative_avg_stretch"]["ALL"]
        assert len(series) == len(TINY.fig3_alphas)
        assert rep.render()

    def test_fig4(self):
        rep = run_experiment("fig4", TINY)
        assert "penalty" in rep.data
        assert set(rep.data["ALL"]) == {"r", "nr"}
        assert rep.render()

    def test_sec312(self):
        rep = run_experiment("sec312", TINY)
        assert set(rep.data) == {0.0, 0.10, 0.50}
        assert rep.render()

    def test_faults(self):
        rep = run_experiment("faults", TINY)
        rel = rep.data["relative_avg_stretch"]
        waste = rep.data["wasted_work_pct"]
        assert set(rel) == {"R2", "HALF", "ALL"}
        # Fault-free cell: zero-latency cancels, nothing runs to waste.
        assert waste["ALL"]["p=0,λ=0/h"] == 0.0
        # Every cancellation lost on ALL: nearly all copies are orphans
        # (on a symmetric platform they mostly start before their delayed
        # cancel even fires, so the waste shows up as duplicate starts).
        assert waste["ALL"]["p=1,λ=0/h"] > 50.0
        assert all(
            v > 0 for row in rel.values() for v in row.values()
        ), "relative stretch must be positive in every cell"
        assert rep.render()

    def test_knee(self):
        rep = run_experiment("knee", TINY)
        payload = rep.data
        assert payload["loads"] == [0.6, 2.4]
        assert set(payload["knee_load"]) == {
            "cancel-on-start", "cancel-on-complete"
        }
        cells = {(c["policy"], c["load"]): c for c in payload["cells"]}
        assert len(cells) == 4
        for policy in ("cancel-on-start", "cancel-on-complete"):
            light = cells[(policy, 0.6)]["completion_fraction"]
            heavy = cells[(policy, 2.4)]["completion_fraction"]
            # More offered load over the same window → lower fraction.
            assert light > heavy
        assert rep.render()

    def test_phase(self):
        rep = run_experiment("phase", TINY)
        payload = rep.data["phase_diagram"]
        assert payload["kind"] == "repro-phase-diagram"
        classes = rep.data["stretch_class"]
        assert set(classes) == {
            "cancel-on-start/R2/lublin",
            "cancel-on-complete/R2/lublin",
        }
        assert all(
            c in {"helpful", "neutral", "harmful"}
            for row in classes.values() for c in row.values()
        )
        assert rep.render()
