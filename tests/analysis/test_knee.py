"""Tests for the online-metrics-only throughput-knee study."""

import math

import pytest

from repro.analysis.knee import (
    KNEE_COMPLETION_THRESHOLD,
    KneeCell,
    KneeStudy,
    run_knee_study,
    run_single_lean,
)
from repro.core.config import ExperimentConfig


def tiny_config(**overrides):
    defaults = dict(
        scheme="R2", algorithm="easy", n_clusters=2, nodes_per_cluster=16,
        duration=300.0, drain=False, seed=20060619,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def make_cell(policy, load, n_submitted, n_completed):
    return KneeCell(
        policy=policy, load=load,
        n_submitted=n_submitted, n_completed=n_completed,
        stretch_p50=1.0, stretch_p99=2.0, stretch_mean=1.2,
        wasted_node_seconds=0.0,
    )


class TestKneeCell:
    def test_completion_fraction_and_sustained(self):
        cell = make_cell("cancel-on-start", 1.0, 100, 95)
        assert cell.completion_fraction == pytest.approx(0.95)
        assert cell.sustained

    def test_below_threshold_not_sustained(self):
        cell = make_cell("cancel-on-start", 2.0, 100, 50)
        assert not cell.sustained

    def test_empty_cell_is_nan_and_not_sustained(self):
        cell = make_cell("cancel-on-start", 1.0, 0, 0)
        assert math.isnan(cell.completion_fraction)
        assert not cell.sustained


class TestKneeStudyClassification:
    def _study(self, fractions):
        """Build a synthetic study: {load: completed-out-of-100}."""
        study = KneeStudy(
            policies=("p",), loads=tuple(sorted(fractions)),
            n_replications=1,
        )
        for load, completed in sorted(fractions.items()):
            study.cells.append(make_cell("p", load, 100, completed))
        return study

    def test_knee_is_largest_sustained_load(self):
        study = self._study({0.5: 99, 1.0: 95, 1.5: 60, 2.0: 30})
        assert study.knee("p") == 1.0

    def test_no_sustained_load_means_no_knee(self):
        study = self._study({1.0: 10, 2.0: 5})
        assert study.knee("p") is None

    def test_cell_lookup_raises_on_miss(self):
        study = self._study({1.0: 95})
        assert study.cell("p", 1.0).sustained
        with pytest.raises(KeyError):
            study.cell("p", 9.9)

    def test_payload_shape(self):
        study = self._study({1.0: 95, 2.0: 10})
        payload = study.to_payload()
        assert payload["threshold"] == KNEE_COMPLETION_THRESHOLD
        assert payload["loads"] == [1.0, 2.0]
        assert payload["knee_load"] == {"p": 1.0}
        assert [c["sustained"] for c in payload["cells"]] == [True, False]

    def test_payload_serialises_empty_cell_as_none(self):
        study = KneeStudy(policies=("p",), loads=(1.0,), n_replications=1)
        study.cells.append(make_cell("p", 1.0, 0, 0))
        cell = study.to_payload()["cells"][0]
        assert cell["completion_fraction"] is None


class TestLeanRunner:
    def test_strips_jobs_but_keeps_scalars_and_online(self):
        full = run_single_lean(tiny_config(duration=120.0))
        assert full.jobs == []
        assert full.n_submitted_jobs > 0
        assert full.online_metrics is not None
        assert full.online_metrics["metrics"]["stretch"]["count"] > 0


class TestRunKneeStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_knee_study(
            tiny_config(), loads=(0.6, 2.4), n_replications=1
        )

    def test_cells_cover_the_grid_in_order(self, study):
        keys = [(c.policy, c.load) for c in study.cells]
        assert keys == [
            ("cancel-on-start", 0.6), ("cancel-on-start", 2.4),
            ("cancel-on-complete", 0.6), ("cancel-on-complete", 2.4),
        ]

    def test_fractions_are_fractions(self, study):
        for cell in study.cells:
            assert 0.0 <= cell.completion_fraction <= 1.0
            assert cell.n_completed <= cell.n_submitted

    def test_load_monotonicity(self, study):
        """Same window, more work → strictly lower completion fraction."""
        for policy in study.policies:
            light = study.cell(policy, 0.6).completion_fraction
            heavy = study.cell(policy, 2.4).completion_fraction
            assert light > heavy

    def test_drain_is_forced_off(self):
        """A drained base still sweeps fixed windows (else no knee)."""
        study = run_knee_study(
            tiny_config(drain=True, duration=120.0),
            loads=(2.4,), n_replications=1,
        )
        cell = study.cell("cancel-on-start", 2.4)
        # A drained run completes everything; a fixed window at ρ=2.4
        # cannot.  Incompleteness proves drain=False was applied.
        assert cell.completion_fraction < 1.0
