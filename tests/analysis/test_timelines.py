"""Tests for post-run timeline reconstruction."""

import pytest

from repro.cluster.platform import Platform
from repro.core.coordinator import Coordinator
from repro.analysis.timelines import (
    growth_rate,
    level_at,
    peak,
    queue_length_timeline,
    system_request_timeline,
    time_average,
    utilization_timeline,
)
from repro.sim.engine import Simulator
from repro.workload.stream import StreamJob


def job(origin=0, arrival=0.0, nodes=4, runtime=10.0, redundant=False):
    return StreamJob(origin=origin, arrival=arrival, nodes=nodes,
                     runtime=runtime, requested_time=runtime,
                     uses_redundancy=redundant)


@pytest.fixture
def run():
    sim = Simulator()
    platform = Platform(sim, [8, 8], algorithm="easy")
    coord = Coordinator(sim, platform)
    # A redundant job whose remote copy gets cancelled, plus a local one.
    coord.schedule_job(job(nodes=8, runtime=10.0, redundant=True), [0, 1])
    coord.schedule_job(job(origin=1, arrival=2.0, nodes=4, runtime=6.0),
                       [1])
    sim.run()
    return coord, platform


class TestTimelines:
    def test_system_request_counts(self, run):
        coord, _ = run
        series = system_request_timeline(coord.jobs)
        # t=0: two copies live; the loser cancelled at t=0 too (winner
        # started immediately), so the level at 0 is net 1.
        assert level_at(series, 0.0) == 1
        assert level_at(series, 2.5) == 2   # plus the second job
        assert level_at(series, 100.0) == 0  # everything done

    def test_queue_length_timeline_empty_when_instant_start(self, run):
        coord, _ = run
        series = queue_length_timeline(coord.jobs, 0)
        assert peak(series) <= 1  # submitted and started at same instant

    def test_utilization_timeline(self, run):
        coord, platform = run
        series = utilization_timeline(coord.jobs, 0, 8)
        assert level_at(series, 5.0) == pytest.approx(1.0)  # 8/8 busy
        assert level_at(series, 50.0) == 0.0

    def test_utilization_invalid_nodes(self, run):
        coord, _ = run
        with pytest.raises(ValueError):
            utilization_timeline(coord.jobs, 0, 0)


class TestSeriesHelpers:
    SERIES = [(0.0, 0.0), (10.0, 4.0), (20.0, 2.0)]

    def test_level_at(self):
        assert level_at(self.SERIES, -1.0) == 0.0
        assert level_at(self.SERIES, 10.0) == 4.0
        assert level_at(self.SERIES, 15.0) == 4.0
        assert level_at(self.SERIES, 25.0) == 2.0

    def test_peak(self):
        assert peak(self.SERIES) == 4.0
        assert peak([]) == 0.0

    def test_time_average(self):
        # [0,10): 0, [10,20): 4, [20,30): 2 -> mean over [0,30] = 2.0
        assert time_average(self.SERIES, 0.0, 30.0) == pytest.approx(2.0)

    def test_time_average_partial_window(self):
        assert time_average(self.SERIES, 10.0, 20.0) == pytest.approx(4.0)

    def test_time_average_empty_interval(self):
        with pytest.raises(ValueError):
            time_average(self.SERIES, 5.0, 5.0)

    def test_growth_rate_linear_series(self):
        series = [(float(t), 2.0 * t) for t in range(100)]
        assert growth_rate(series, 0.0, 99.0) == pytest.approx(2.0)

    def test_growth_rate_too_few_points(self):
        assert growth_rate([(0.0, 1.0)], 0.0, 10.0) == 0.0


class TestDeprecatedShimRemoved:
    def test_core_tracing_shim_is_gone(self):
        # the PR-3 rename shim has been deleted; the old import path
        # must fail loudly rather than silently resurface
        import importlib
        import sys

        sys.modules.pop("repro.core.tracing", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.core.tracing")


class TestQueueGrowthReconstruction:
    def test_overloaded_queue_grows(self):
        """Reconstruct §4.1's queue growth from request lifecycles."""
        sim = Simulator()
        platform = Platform(sim, [4], algorithm="easy")
        coord = Coordinator(sim, platform)
        for i in range(100):
            coord.schedule_job(
                job(arrival=float(i), nodes=4, runtime=50.0), [0]
            )
        sim.run(until=100.0)
        series = queue_length_timeline(coord.jobs, 0)
        rate = growth_rate(series, 0.0, 100.0)
        # ~1 arrival/s, ~0.02 starts/s: queue grows at almost 1/s.
        assert rate > 0.8
