"""Tests for ASCII plotting."""

import pytest

from repro.analysis.plots import AsciiPlot


class TestAsciiPlot:
    def make(self):
        p = AsciiPlot("T", xlabel="x", ylabel="y", width=40, height=10)
        p.add_series("a", [(0, 0.0), (10, 1.0)])
        p.add_series("b", [(0, 1.0), (10, 0.0)])
        return p

    def test_renders_title_axes_legend(self):
        out = self.make().render()
        assert "T" in out
        assert "x" in out and "y" in out
        assert "o=a" in out and "x=b" in out

    def test_grid_dimensions(self):
        out = self.make().render()
        rows = [l for l in out.splitlines() if "|" in l]
        assert len(rows) == 10

    def test_markers_present(self):
        out = self.make().render()
        assert "o" in out and "x" in out

    def test_reference_line(self):
        p = AsciiPlot("T", reference_y=0.5, width=30, height=8)
        p.add_series("s", [(0, 0.0), (1, 1.0)])
        assert "." in p.render()

    def test_empty_plot(self):
        assert "empty" in AsciiPlot("T").render()

    def test_single_point_series(self):
        p = AsciiPlot("T", width=20, height=5)
        p.add_series("s", [(1.0, 2.0)])
        out = p.render()
        assert "o" in out

    def test_flat_series_does_not_crash(self):
        p = AsciiPlot("T", width=20, height=5)
        p.add_series("s", [(0, 1.0), (5, 1.0), (10, 1.0)])
        p.render()

    def test_no_points_raises_via_bounds(self):
        p = AsciiPlot("T")
        p.add_series("s", [])
        with pytest.raises(ValueError):
            p.render()
