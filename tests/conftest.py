"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import logging

import pytest

from repro.cluster.cluster import Cluster
from repro.sched import CBFScheduler, EASYScheduler, FCFSScheduler
from repro.sched.job import Request
from repro.sim.engine import Simulator


def make_request(
    nodes: int = 1,
    runtime: float = 10.0,
    requested: float | None = None,
    submit_time: float = 0.0,
    **kwargs,
) -> Request:
    """A request with sensible defaults for scheduler tests."""
    return Request(
        nodes=nodes,
        runtime=runtime,
        requested_time=requested if requested is not None else runtime,
        submit_time=submit_time,
        **kwargs,
    )


@pytest.fixture(autouse=True)
def _isolate_repro_logger():
    """Undo ``setup_logging`` side effects between tests.

    Any test that drives ``repro.cli.main`` installs a stderr handler
    on the ``repro`` logger and turns propagation off; left in place,
    the handler points at a captured (and later closed) stream and
    caplog-based tests downstream never see their records.
    """
    logger = logging.getLogger("repro")
    level, propagate = logger.level, logger.propagate
    handlers = list(logger.handlers)
    yield
    logger.setLevel(level)
    logger.propagate = propagate
    logger.handlers[:] = handlers


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(0, 8)


@pytest.fixture(params=["fcfs", "easy", "cbf"])
def any_scheduler(request, sim, cluster):
    """One scheduler of each algorithm, same 8-node cluster."""
    cls = {"fcfs": FCFSScheduler, "easy": EASYScheduler, "cbf": CBFScheduler}
    return cls[request.param](sim, cluster)


def run_all(sim: Simulator) -> None:
    """Drain the event heap."""
    sim.run()


def submit_at(sim: Simulator, scheduler, request: Request, t: float) -> Request:
    """Schedule a submission at absolute time ``t``."""
    from repro.sim.events import EventPriority

    sim.at(t, lambda: scheduler.submit(request), EventPriority.SUBMIT)
    return request
