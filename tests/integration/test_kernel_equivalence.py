"""Old kernel vs new kernel: full experiments must be indistinguishable.

The calendar-queue rewrite claims to be a pure data-structure change —
same events, same order, same trajectories.  The lockstep suite
(``tests/sim/test_calendar_lockstep.py``) proves the structures agree
operation-by-operation; this module closes the loop end-to-end by
running whole traced experiments on both kernels (monkeypatching the
engine's default queue factory) and asserting the obs-layer trace is
byte-identical and the results are equal.
"""

from __future__ import annotations

import pytest

from repro.core.config import ExperimentConfig
from repro.obs.trace import run_single_traced, write_trace, _event_record
from repro.sim import engine
from repro.sim.heapref import BinaryHeapQueue


def _config(**overrides):
    defaults = dict(
        scheme="ALL", algorithm="easy", n_clusters=3, nodes_per_cluster=16,
        duration=300.0, drain=True, seed=42,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _trace_bytes(tmp_path, name, traced, scheme):
    path = tmp_path / name
    records = (
        _event_record(e, config_index=0, replication=0, scheme=scheme)
        for e in traced.events
    )
    write_trace(path, {"configs": []}, records)
    return path.read_bytes()


@pytest.mark.parametrize("algorithm", ["fcfs", "easy", "cbf"])
def test_trace_byte_identical_across_kernels(tmp_path, monkeypatch, algorithm):
    """Same seed, both kernels: the serialized trace bytes must match."""
    cfg = _config(algorithm=algorithm)
    new = run_single_traced(cfg)
    monkeypatch.setattr(engine, "_DEFAULT_QUEUE_FACTORY", BinaryHeapQueue)
    old = run_single_traced(cfg)
    assert new.events == old.events
    assert _trace_bytes(tmp_path, "new.jsonl", new, cfg.scheme) == _trace_bytes(
        tmp_path, "old.jsonl", old, cfg.scheme
    )


def test_results_equal_across_kernels(monkeypatch):
    """Job-level metrics agree, not just the event stream."""
    cfg = _config(scheme="R2", algorithm="easy", seed=7)
    new = run_single_traced(cfg).result
    monkeypatch.setattr(engine, "_DEFAULT_QUEUE_FACTORY", BinaryHeapQueue)
    old = run_single_traced(cfg).result
    assert [j.stretch for j in new.jobs] == [j.stretch for j in old.jobs]
    assert [j.wait_time for j in new.jobs] == [j.wait_time for j in old.jobs]
    assert new.events_executed == old.events_executed
