"""Byte-identity of cancel-on-start traces across the policy refactor.

The golden file was recorded from the pre-refactor coordinator (the
inlined cancellation-dispatch block) over three configurations chosen to
exercise every dispatch path: zero-latency immediate cancellation,
scalar cancellation latency, and fault-injected per-loser delays with
outages and resubmission.  The policy layer extracted that block into
``Coordinator.dispatch_cancellations`` — this test proves the default
``cancel-on-start`` policy reproduces the exact event stream, byte for
byte, so the refactor is observationally free.
"""

import json
from pathlib import Path

from repro.core.config import ExperimentConfig
from repro.faults import FaultConfig
from repro.obs.trace import run_single_traced

GOLDEN = Path(__file__).parent / "data" / "cancel_on_start_golden.jsonl"

BASE = dict(
    n_clusters=3,
    nodes_per_cluster=16,
    duration=300.0,
    offered_load=2.0,
    drain=True,
    seed=20060619,
)

#: zero latency / scalar latency / fault-injected delays + outages
CONFIGS = (
    ExperimentConfig(scheme="R2", **BASE),
    ExperimentConfig(scheme="R3", cancellation_latency=30.0, **BASE),
    ExperimentConfig(
        scheme="ALL",
        faults=FaultConfig(
            p_cancel_loss=0.3,
            cancel_delay_mean=30.0,
            cancel_delay_distribution="exponential",
            outage_rate=2.0,
            outage_duration=300.0,
            outage_drop_queue=True,
            resubmit_policy="resubmit",
        ),
        **BASE,
    ),
)


def render_current() -> str:
    lines = []
    for ci, cfg in enumerate(CONFIGS):
        traced = run_single_traced(cfg, replication=0)
        for t, etype, cluster, request_id, job_id in traced.events:
            lines.append(json.dumps(
                {
                    "config": ci,
                    "t": t,
                    "type": etype,
                    "cluster": cluster,
                    "request": request_id,
                    "job": job_id,
                },
                sort_keys=True,
                separators=(",", ":"),
            ))
    return "\n".join(lines) + "\n"


def test_cancel_on_start_traces_byte_identical():
    assert render_current() == GOLDEN.read_text()
