"""Integration tests: the paper's qualitative claims at reduced scale.

These run the same code paths as the benchmark harness but on small
platforms/short windows, asserting *directions and orderings* rather
than magnitudes (which are recorded in EXPERIMENTS.md at bench scale).
"""

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.core.runner import compare_schemes, run_replications
from repro.core.experiment import run_single

BASE = ExperimentConfig(
    n_clusters=10,
    nodes_per_cluster=64,
    duration=1200.0,
    offered_load=2.0,
    drain=True,
    seed=17,
)
REPS = 3


@pytest.fixture(scope="module")
def n10_comparison():
    return compare_schemes(BASE, ["R2", "HALF", "ALL"], REPS)


class TestSection3Scheduling:
    def test_redundancy_improves_avg_stretch_at_n10(self, n10_comparison):
        """Figure 1's headline: relative average stretch < 1 for N=10."""
        for scheme in ("R2", "HALF", "ALL"):
            rel = n10_comparison.relative(scheme)
            assert rel.avg_stretch < 1.0, (
                f"{scheme}: relative stretch {rel.avg_stretch:.2f} >= 1"
            )

    def test_more_redundancy_helps_more(self, n10_comparison):
        """Figure 1 ordering at N=10: ALL <= HALF <= R2 (roughly)."""
        r2 = n10_comparison.relative("R2").avg_stretch
        all_ = n10_comparison.relative("ALL").avg_stretch
        assert all_ < r2

    def test_redundancy_wins_most_replications(self, n10_comparison):
        rel = n10_comparison.relative("HALF")
        assert rel.win_fraction >= 0.5

    def test_max_stretch_improves(self, n10_comparison):
        """The paper: max stretch improves 10-60% on average."""
        rel = n10_comparison.relative("ALL")
        assert rel.max_stretch < 1.0

    def test_turnaround_metric_agrees(self, n10_comparison):
        """The paper: conclusions unchanged with the turnaround metric."""
        rel = n10_comparison.relative("ALL")
        assert rel.avg_turnaround < 1.0

    def test_benefit_grows_with_sites(self):
        """Figure 1 shape: N=2 benefit weaker than N=10 benefit."""
        small = compare_schemes(BASE.with_(n_clusters=2), ["R2"], REPS)
        big = compare_schemes(BASE.with_(n_clusters=10), ["R2"], REPS)
        assert (
            big.relative("R2").avg_stretch
            < small.relative("R2").avg_stretch + 0.05
        )


class TestTable1Robustness:
    @pytest.mark.parametrize("algorithm", ["easy", "cbf", "fcfs"])
    @pytest.mark.parametrize("estimates", ["exact", "phi"])
    def test_benefit_across_algorithms_and_estimates(self, algorithm,
                                                     estimates):
        cfg = BASE.with_(
            algorithm=algorithm, estimates=estimates, duration=900.0,
            n_clusters=6,
        )
        cmp_ = compare_schemes(cfg, ["HALF"], 2)
        assert cmp_.relative("HALF").avg_stretch < 1.05


class TestTable2Bias:
    def test_biased_targets_still_beneficial(self):
        cfg = BASE.with_(target_bias_ratio=0.5)
        cmp_ = compare_schemes(cfg, ["HALF"], REPS)
        assert cmp_.relative("HALF").avg_stretch < 1.0


class TestTable3Heterogeneity:
    def test_heterogeneous_benefit_at_least_homogeneous(self):
        """The paper: redundancy helps even more on heterogeneous
        platforms."""
        hom = compare_schemes(BASE, ["HALF"], REPS)
        het = compare_schemes(BASE.with_(heterogeneous=True), ["HALF"], REPS)
        assert het.relative("HALF").avg_stretch < 1.0
        # Allow noise, but heterogeneity should not be much worse.
        assert (
            het.relative("HALF").avg_stretch
            <= hom.relative("HALF").avg_stretch + 0.25
        )


class TestFigure4PartialAdoption:
    @pytest.fixture(scope="class")
    def sweep(self):
        out = {}
        for p in (0.0, 0.5, 1.0):
            cfg = BASE.with_(scheme="ALL", adoption_probability=p)
            out[p] = run_replications(cfg, REPS)
        return out

    def _mean_stretch(self, results, redundant):
        vals = []
        for r in results:
            s = r.stretches(redundant=redundant)
            if s.size:
                vals.append(float(s.mean()))
        return float(np.mean(vals)) if vals else float("nan")

    def test_non_adopters_hurt_by_adoption(self):
        """Figure 4: the identical non-adopter job set fares worse when
        others adopt (paired comparison — the unpaired means are too
        noisy at test scale to show the paper's linear trend)."""
        from repro.core.runner import paired_nonadopter_penalty

        penalty = paired_nonadopter_penalty(
            BASE.with_(duration=1800.0, seed=101), "ALL",
            adoption=0.75, n_replications=6,
        )
        assert penalty > 1.0

    def test_adopters_beat_non_adopters_at_same_p(self, sweep):
        r = self._mean_stretch(sweep[0.5], redundant=True)
        nr = self._mean_stretch(sweep[0.5], redundant=False)
        assert r < nr

    def test_full_adoption_beats_no_adoption(self, sweep):
        """The paper: 'the average stretch is better when p = 100 than
        when p = 0'."""
        at_0 = self._mean_stretch(sweep[0.0], redundant=False)
        at_100 = self._mean_stretch(sweep[1.0], redundant=True)
        assert at_100 < at_0


class TestSection312Inflation:
    def test_inflation_changes_little(self):
        base_cmp = compare_schemes(BASE, ["HALF"], REPS)
        infl_cmp = compare_schemes(
            BASE.with_(remote_inflation=0.5), ["HALF"], REPS
        )
        a = base_cmp.relative("HALF").avg_stretch
        b = infl_cmp.relative("HALF").avg_stretch
        assert b < 1.0
        assert abs(a - b) < 0.25


class TestSystemAccounting:
    def test_request_and_cancellation_bookkeeping(self):
        r = run_single(BASE.with_(scheme="R3"), 0, check_invariants=True)
        red = [j for j in r.jobs if j.uses_redundancy]
        expected_requests = sum(j.n_copies for j in r.jobs)
        assert r.total_requests == expected_requests
        assert r.total_cancellations == sum(j.n_copies - 1 for j in r.jobs)

    def test_drained_run_completes_everything(self):
        r = run_single(BASE.with_(scheme="ALL"), 0)
        assert r.completion_fraction == 1.0
