"""Baseline round-trip: snapshot, reload, absorb, budget exhaustion."""

import json
import textwrap

import pytest

from repro.lint.baseline import Baseline, BaselineError
from repro.lint.engine import run_lint

VIOLATION = textwrap.dedent(
    """
    import time


    def stamp():
        return time.time()
    """
)


def write_module(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return path


class TestRoundTrip:
    def test_snapshot_write_load_suppresses_same_findings(self, tmp_path):
        mod = write_module(tmp_path, "mod.py", VIOLATION)
        first = run_lint([mod])
        assert first.exit_code == 1

        baseline_path = tmp_path / "baseline.json"
        Baseline.snapshot(first.findings).write(
            baseline_path, findings=first.findings
        )

        second = run_lint([mod], baseline=baseline_path)
        assert second.exit_code == 0
        assert second.baselined == len(first.findings)

    def test_baseline_survives_pure_line_shift(self, tmp_path):
        mod = write_module(tmp_path, "mod.py", VIOLATION)
        baseline_path = tmp_path / "baseline.json"
        Baseline.snapshot(run_lint([mod]).findings).write(baseline_path)

        # prepend declarations: every finding moves down four lines
        mod.write_text("A = 1\nB = 2\nC = 3\nD = 4\n" + VIOLATION)
        shifted = run_lint([mod], baseline=baseline_path)
        assert shifted.exit_code == 0

    def test_new_occurrence_beyond_budget_still_fails(self, tmp_path):
        mod = write_module(tmp_path, "mod.py", VIOLATION)
        baseline_path = tmp_path / "baseline.json"
        Baseline.snapshot(run_lint([mod]).findings).write(baseline_path)

        # duplicate the offending function: same fingerprint, count 2 > 1
        mod.write_text(
            VIOLATION + "\n\ndef stamp_again():\n    return time.time()\n"
        )
        over = run_lint([mod], baseline=baseline_path)
        assert over.exit_code == 1
        assert over.baselined >= 1  # budgeted occurrences stay tolerated

    def test_written_file_carries_schema_and_context(self, tmp_path):
        mod = write_module(tmp_path, "mod.py", VIOLATION)
        result = run_lint([mod])
        baseline_path = tmp_path / "baseline.json"
        Baseline.snapshot(result.findings).write(
            baseline_path, findings=result.findings
        )
        payload = json.loads(baseline_path.read_text())
        assert payload["schema"] == 1
        entry = payload["findings"][0]
        assert set(entry) == {"fingerprint", "count", "rule", "path", "snippet"}


class TestValidation:
    def test_empty_repo_baseline_is_valid_and_empty(self):
        # the checked-in gate baseline must stay schema-valid and strict
        from pathlib import Path

        repo_baseline = Path(__file__).resolve().parents[2] / "lint-baseline.json"
        base = Baseline.load(repo_baseline)
        assert base.entries == {}

    def test_malformed_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BaselineError):
            Baseline.load(bad)

    def test_wrong_schema_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 99, "findings": []}))
        with pytest.raises(BaselineError):
            Baseline.load(bad)

    def test_entry_without_fingerprint_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 1, "findings": [{"count": 1}]}))
        with pytest.raises(BaselineError):
            Baseline.load(bad)
