"""Engine-level guarantees of the interprocedural pipeline: report
determinism, ``--changed`` scoping, and the purity-contract regression
gate on ``run_single``."""

from pathlib import Path

from repro.lint.engine import run_lint
from repro.lint.report import render_json

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def _mini_tree(root, *, decorated: bool, rng: bool = False):
    """A tiny repro tree whose ``run_single`` matches the pinned qualid."""
    pkg = root / "repro" / "core"
    pkg.mkdir(parents=True)
    body = (
        "    return np.random.default_rng().random()\n"
        if rng
        else "    return (config, replication)\n"
    )
    (pkg / "experiment.py").write_text(
        "import numpy as np\n"
        "from repro.contracts import declared_pure\n"
        + ("@declared_pure\n" if decorated else "")
        + "def run_single(config: object, replication: int = 0) -> object:\n"
        + body
    )
    return root


class TestReportDeterminism:
    def test_two_runs_over_fixtures_are_byte_identical(self):
        # the fixture corpus is rich in findings across every rule
        # family; two runs must serialise to identical bytes
        first = run_lint([FIXTURES])
        second = run_lint([FIXTURES])
        assert first.findings  # non-trivial corpus
        assert render_json(first) == render_json(second)

    def test_cold_vs_warm_cache_over_fixtures(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_lint([FIXTURES], cache_dir=cache_dir)
        warm = run_lint([FIXTURES], cache_dir=cache_dir)
        assert warm.files_cached == warm.files_checked
        assert render_json(cold) == render_json(warm)


class TestChangedScoping:
    def test_only_changed_files_report(self, tmp_path):
        tree = _mini_tree(tmp_path / "t", decorated=True, rng=True)
        other = tree / "repro" / "core" / "other.py"
        other.write_text(
            "import numpy as np\n"
            "from repro.contracts import declared_pure\n"
            "@declared_pure\n"
            "def also_bad() -> float:\n"
            "    return np.random.default_rng().random()\n"
        )
        experiment = tree / "repro" / "core" / "experiment.py"

        full = run_lint([tree])
        assert {f.rule for f in full.active} >= {"PURE001"}
        assert len({f.path for f in full.active}) == 2

        scoped = run_lint([tree], changed={experiment.resolve()})
        assert scoped.files_checked == 2  # whole tree still analyzed
        assert scoped.active  # the changed file's finding survives
        assert {f.path for f in scoped.findings} == {
            f.path for f in full.findings if "experiment" in f.path
        }

    def test_changed_caller_judged_against_unchanged_callee(self, tmp_path):
        # the effect lives in an UNCHANGED file; the changed caller must
        # still be condemned through the full project call graph
        tree = tmp_path / "t"
        pkg = tree / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "leaf.py").write_text(
            "def helper(path: str = 'x') -> str:\n"
            "    return open(path).read()\n"
        )
        caller = pkg / "caller.py"
        caller.write_text(
            "from repro.contracts import declared_pure\n"
            "from .leaf import helper\n"
            "@declared_pure\n"
            "def entry() -> str:\n"
            "    return helper()\n"
        )
        scoped = run_lint([tree], changed={caller.resolve()})
        assert [f.rule for f in scoped.active] == ["PURE001"]
        assert "caller.py" in scoped.active[0].path


class TestRunSinglePurityGate:
    def test_shipped_run_single_is_declared_pure_and_clean(self):
        result = run_lint([REPO_ROOT / "src"])
        assert result.active == [
        ], "\n".join(f.render() for f in result.active)

    def test_removing_the_decorator_fails_lint(self, tmp_path):
        tree = _mini_tree(tmp_path / "t", decorated=False)
        result = run_lint([tree])
        assert result.exit_code != 0
        assert "PURE002" in {f.rule for f in result.active}

    def test_adding_rng_to_a_pure_run_single_fails_lint(self, tmp_path):
        tree = _mini_tree(tmp_path / "t", decorated=True, rng=True)
        result = run_lint([tree])
        assert result.exit_code != 0
        pure = [f for f in result.active if f.rule == "PURE001"]
        assert pure and "unkeyed randomness" in pure[0].message

    def test_clean_pure_run_single_passes(self, tmp_path):
        tree = _mini_tree(tmp_path / "t", decorated=True, rng=False)
        result = run_lint([tree])
        assert result.exit_code == 0
