"""PAR001 against its positive and negative fixtures."""

from repro.lint.findings import Severity

from .conftest import assert_rule_matches, rule_findings


class TestPar001:
    def test_flags_global_rebind_and_inplace_mutation(self):
        assert_rule_matches("repro/core/par001_state.py", "PAR001")

    def test_local_and_instance_mutation_pass(self):
        assert rule_findings("repro/core/par001_ok.py", "PAR001") == []

    def test_findings_name_the_offending_global(self):
        findings = rule_findings("repro/core/par001_state.py", "PAR001")
        assert findings
        assert all(f.severity is Severity.ERROR for f in findings)
        named = {f.message.split("'")[1] for f in findings}
        assert named == {"_CACHE", "_COUNTER", "_RESULTS"}
