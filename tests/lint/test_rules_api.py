"""API001 against its positive and negative fixtures."""

from .conftest import assert_rule_matches, rule_findings


class TestApi001:
    def test_flags_annotation_gaps_in_typed_packages(self):
        assert_rule_matches("repro/sched/api001_gaps.py", "API001")

    def test_fully_annotated_surface_passes(self):
        assert rule_findings("repro/sched/api001_ok.py", "API001") == []

    def test_packages_outside_typing_gate_are_exempt(self):
        assert (
            rule_findings("repro/analysis/api001_out_of_scope.py", "API001")
            == []
        )

    def test_message_lists_the_missing_pieces(self):
        findings = rule_findings("repro/sched/api001_gaps.py", "API001")
        by_line = {f.snippet.split("(")[0]: f.message for f in findings}
        assert "parameter 'depth'" in by_line["def make_queue"]
        assert "return type" in by_line["def make_queue"]
        # annotated parameter must not be reported
        assert "'limit'" not in by_line["def drain"]
        assert "parameter 'queue'" in by_line["def drain"]
