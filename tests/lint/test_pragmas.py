"""Waiver pragmas and their meta-rules (LNT001/LNT002/LNT003)."""

import textwrap


def rules_of(findings):
    return sorted(f.rule for f in findings)


class TestWaivers:
    def test_trailing_pragma_waives_finding_on_its_line(self, lint_snippet):
        source = textwrap.dedent(
            """
            import time


            def stamp():
                return time.time()  # repro-lint: disable=DET001 -- test fixture
            """
        )
        findings = lint_snippet(source)
        det = [f for f in findings if f.rule == "DET001"]
        assert len(det) == 1 and det[0].waived and det[0].suppressed
        # a used, justified pragma produces no meta-findings
        assert not [f for f in findings if f.rule.startswith("LNT")]

    def test_comment_line_pragma_covers_next_code_line(self, lint_snippet):
        source = textwrap.dedent(
            """
            import time


            def stamp():
                # repro-lint: disable=DET001 -- justification spanning a
                # continuation comment line before the code it covers
                return time.time()
            """
        )
        findings = lint_snippet(source)
        det = [f for f in findings if f.rule == "DET001"]
        assert len(det) == 1 and det[0].waived
        assert not [f for f in findings if f.rule.startswith("LNT")]

    def test_file_pragma_waives_every_occurrence(self, lint_snippet):
        source = textwrap.dedent(
            """
            # repro-lint: disable-file=DET001 -- test fixture
            import time


            def stamp():
                return time.time()


            def stamp_ns():
                return time.time_ns()
            """
        )
        findings = lint_snippet(source)
        det = [f for f in findings if f.rule == "DET001"]
        assert len(det) == 2 and all(f.waived for f in det)

    def test_pragma_for_other_rule_does_not_waive(self, lint_snippet):
        source = textwrap.dedent(
            """
            import time


            def stamp():
                return time.time()  # repro-lint: disable=EXC001 -- wrong rule
            """
        )
        findings = lint_snippet(source)
        det = [f for f in findings if f.rule == "DET001"]
        assert len(det) == 1 and not det[0].waived
        # and the EXC001 waiver is reported stale
        assert "LNT002" in rules_of(findings)

    def test_docstring_mentioning_pragma_is_inert(self, lint_snippet):
        source = textwrap.dedent(
            '''
            def helper():
                """Docs may show '# repro-lint: disable=DET001 -- x' safely."""
                return 1
            '''
        )
        assert lint_snippet(source) == []


class TestMetaRules:
    def test_lnt001_unjustified_pragma(self, lint_snippet):
        source = textwrap.dedent(
            """
            import time


            def stamp():
                return time.time()  # repro-lint: disable=DET001
            """
        )
        findings = lint_snippet(source)
        assert "LNT001" in rules_of(findings)
        # the waiver still applies; only the missing justification errors
        det = [f for f in findings if f.rule == "DET001"]
        assert det[0].waived

    def test_lnt002_stale_pragma(self, lint_snippet):
        source = "x = 1  # repro-lint: disable=DET001 -- nothing here\n"
        findings = lint_snippet(source)
        assert rules_of(findings) == ["LNT002"]

    def test_lnt003_unknown_rule(self, lint_snippet):
        source = "x = 1  # repro-lint: disable=NOPE999 -- bogus\n"
        findings = lint_snippet(source)
        assert rules_of(findings) == ["LNT003"]

    def test_meta_rules_cannot_be_waived(self, lint_snippet):
        source = "x = 1  # repro-lint: disable=LNT002 -- self-excusing\n"
        findings = lint_snippet(source)
        assert "LNT003" in rules_of(findings)
        assert not any(f.waived for f in findings)

    def test_lnt000_syntax_error(self, lint_snippet):
        findings = lint_snippet("def broken(:\n")
        assert rules_of(findings) == ["LNT000"]
