"""Unit tests for the effect-summary extraction layer and the
interprocedural propagation on top of it."""

from pathlib import Path

import pytest

from repro.lint.context import FileContext
from repro.lint.effects.analysis import (
    effect_chains,
    lock_cycles,
    lock_order_edges,
    transitive_acquires,
)
from repro.lint.effects.callgraph import CallGraph
from repro.lint.effects.extract import extract_module
from repro.lint.effects.model import ModuleFacts


def facts_for(tmp_path: Path, source: str, name="repro/core/mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return extract_module(FileContext(path, name, source))


def fn(facts: ModuleFacts, qualid_tail: str):
    return next(
        f for f in facts.functions if f.qualid.endswith(qualid_tail)
    )


class TestExtraction:
    def test_effect_classification(self, tmp_path):
        facts = facts_for(
            tmp_path,
            "import time\n"
            "import numpy as np\n"
            "def f(path):\n"
            "    t = time.time()\n"
            "    p = time.perf_counter()\n"
            "    r = np.random.default_rng().random()\n"
            "    open(path).read()\n"
            "    time.sleep(1)\n"
            "    return t, p, r\n",
        )
        kinds = {e.kind for e in fn(facts, ".f").effects}
        assert kinds == {"wall_clock", "timing", "rng", "io", "blocking"}

    def test_pinned_constant_seed_is_not_rng(self, tmp_path):
        facts = facts_for(
            tmp_path,
            "import numpy as np\n"
            "SEED = 3\n"
            "def pinned():\n"
            "    return np.random.default_rng(SEED + 1)\n"
            "def unpinned(seed):\n"
            "    return np.random.default_rng(seed)\n"
            "def entropy():\n"
            "    return np.random.default_rng()\n",
        )
        assert fn(facts, ".pinned").effects == []
        assert [e.kind for e in fn(facts, ".unpinned").effects] == ["rng"]
        assert [e.kind for e in fn(facts, ".entropy").effects] == ["rng"]

    def test_nested_defs_inline_into_enclosing_summary(self, tmp_path):
        facts = facts_for(
            tmp_path,
            "import time\n"
            "def outer():\n"
            "    def cb():\n"
            "        return time.time()\n"
            "    return cb\n",
        )
        outer = fn(facts, ".outer")
        assert [e.kind for e in outer.effects] == ["wall_clock"]
        # the nested def is not a separate graph node
        assert len(facts.functions) == 1

    def test_relative_import_call_resolution(self, tmp_path):
        facts = facts_for(
            tmp_path,
            "from ..sim.engine import advance\n"
            "def step():\n"
            "    return advance()\n",
        )
        (call,) = fn(facts, ".step").calls
        assert call.target == "repro.sim.engine.advance"

    def test_lock_regions_and_guarded_attrs(self, tmp_path):
        facts = facts_for(
            tmp_path,
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._v = 0\n"
            "    def set(self, v):\n"
            "        with self._lock:\n"
            "            self._v = v\n"
            "    def get(self):\n"
            "        return self._v\n",
        )
        (cls,) = facts.classes
        assert cls.lock_attrs == ["_lock"]
        assert cls.guarded_attrs == ["_v"]
        (site,) = cls.unguarded_sites
        assert (site.method, site.attr, site.write) == ("get", "_v", False)

    def test_facts_roundtrip_through_dict(self, tmp_path):
        facts = facts_for(
            tmp_path,
            "import threading\n"
            "import time\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._v = 0\n"
            "    def set(self, v):\n"
            "        with self._lock:\n"
            "            self._v = v\n"
            "def f():\n"
            "    return time.time()\n",
        )
        rebuilt = ModuleFacts.from_dict(facts.to_dict())
        assert rebuilt is not None
        assert rebuilt.to_dict() == facts.to_dict()

    def test_schema_mismatch_returns_none(self, tmp_path):
        facts = facts_for(tmp_path, "def f():\n    return 1\n")
        d = facts.to_dict()
        d["schema"] = -1
        assert ModuleFacts.from_dict(d) is None


class TestPropagation:
    def _graph(self, tmp_path, source, name="repro/core/mod.py"):
        return CallGraph([facts_for(tmp_path, source, name)])

    def test_effect_chains_shortest_witness(self, tmp_path):
        graph = self._graph(
            tmp_path,
            "import time\n"
            "def a():\n"
            "    return b()\n"
            "def b():\n"
            "    return c()\n"
            "def c():\n"
            "    return time.time()\n",
        )
        chains = effect_chains(
            graph, "repro.core.mod.a", ("wall_clock",)
        )
        chain = chains["wall_clock"]
        assert [q.rsplit(".", 1)[-1] for q, _ in chain.steps] == ["b", "c"]
        assert chain.effect.detail == "time.time"

    def test_effect_chains_handle_cycles(self, tmp_path):
        graph = self._graph(
            tmp_path,
            "def a():\n"
            "    return b()\n"
            "def b():\n"
            "    return a()\n",
        )
        assert effect_chains(graph, "repro.core.mod.a", ("io",)) == {}

    def test_suppress_vetoes_an_origin(self, tmp_path):
        graph = self._graph(
            tmp_path,
            "import time\n"
            "def a():\n"
            "    return time.time()\n",
        )
        chains = effect_chains(
            graph, "repro.core.mod.a", ("wall_clock",),
            suppress=lambda f, p, e: True,
        )
        assert chains == {}

    def test_transitive_acquires_and_cycle(self, tmp_path):
        graph = self._graph(
            tmp_path,
            "import threading\n"
            "class A:\n"
            "    def __init__(self, peer: 'B'):\n"
            "        self._lock = threading.Lock()\n"
            "        self._peer = peer\n"
            "    def fwd(self):\n"
            "        with self._lock:\n"
            "            self._peer.poke()\n"
            "class B:\n"
            "    def __init__(self, peer: 'A'):\n"
            "        self._lock = threading.Lock()\n"
            "        self._peer = peer\n"
            "    def poke(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "    def back(self):\n"
            "        with self._lock:\n"
            "            self._peer.fwd()\n",
        )
        acq = transitive_acquires(graph)
        assert "repro.core.mod.B._lock" in acq["repro.core.mod.A.fwd"]
        edges = lock_order_edges(graph, acq)
        held_pairs = {(e.held, e.acquired) for e in edges}
        assert (
            "repro.core.mod.A._lock", "repro.core.mod.B._lock"
        ) in held_pairs
        assert (
            "repro.core.mod.B._lock", "repro.core.mod.A._lock"
        ) in held_pairs
        (cycle,) = lock_cycles(edges)
        assert len(cycle) == 2

    def test_method_resolution_through_bases(self, tmp_path):
        facts = facts_for(
            tmp_path,
            "import time\n"
            "class Base:\n"
            "    def tick(self):\n"
            "        return time.time()\n"
            "class Child(Base):\n"
            "    def run(self):\n"
            "        return self.tick()\n",
        )
        graph = CallGraph([facts])
        chains = effect_chains(
            graph, "repro.core.mod.Child.run", ("wall_clock",)
        )
        assert chains["wall_clock"].owner == "repro.core.mod.Base.tick"


class TestContractSanity:
    def test_declared_pure_returns_same_object(self):
        from repro.contracts import PURITY_ATTRIBUTE, declared_pure

        def f():
            return 1

        g = declared_pure(f)
        assert g is f  # pickle-by-name must keep working
        assert getattr(g, PURITY_ATTRIBUTE) is True

    def test_run_single_is_declared_pure_at_runtime(self):
        from repro.contracts import PURITY_ATTRIBUTE
        from repro.core.experiment import run_single

        assert getattr(run_single, PURITY_ATTRIBUTE, False) is True
