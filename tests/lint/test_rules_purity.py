"""PURE001/PURE002: purity contracts over the interprocedural graph."""

from .conftest import assert_rule_matches, rule_findings


class TestPure001:
    def test_positive_fixture(self):
        assert_rule_matches("repro/core/pure001_effects.py", "PURE001")

    def test_negative_fixture(self):
        assert rule_findings("repro/core/pure001_ok.py", "PURE001") == []

    def test_messages_carry_witness_chains(self):
        findings = rule_findings("repro/core/pure001_effects.py", "PURE001")
        by_line = {f.line: f.message for f in findings}
        transitive = next(
            m for m in by_line.values() if "transitive_rng" in m
        )
        # the witness names every hop from root to the effect origin
        assert "via transitive_rng() -> _middle() -> _draw()" in transitive
        assert "unkeyed randomness" in transitive

    def test_origin_waiver_is_used_not_stale(self):
        # the waived origin suppresses the chain AND counts as used:
        # no PURE001 on the root, no LNT002 on the pragma line
        findings = rule_findings("repro/core/pure001_ok.py", "LNT002")
        assert findings == []


class TestPure002:
    def test_missing_contract_fixture(self):
        assert_rule_matches("repro/core/cache.py", "PURE002")

    def test_declared_fixture_passes(self):
        # a declared-pure function never trips the missing-contract rule
        assert rule_findings("repro/core/pure001_ok.py", "PURE002") == []
