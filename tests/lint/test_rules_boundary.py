"""XPB001/BLK001: executor-boundary picklability and event-loop safety."""

from .conftest import assert_rule_matches, rule_findings


class TestXpb001:
    def test_positive_fixture(self):
        assert_rule_matches("repro/core/xpb001_boundary.py", "XPB001")

    def test_negative_fixture(self):
        assert rule_findings("repro/core/xpb001_ok.py", "XPB001") == []

    def test_reasons_are_specific(self):
        findings = rule_findings("repro/core/xpb001_boundary.py", "XPB001")
        reasons = " | ".join(f.message for f in findings)
        assert "lambda" in reasons
        assert "nested function" in reasons
        assert "synchronisation primitive" in reasons
        assert "socket" in reasons
        assert "open file handle" in reasons
        assert "'self' of Dispatcher" in reasons
        assert "lock attribute self._lock" in reasons


class TestBlk001:
    def test_positive_fixture(self):
        assert_rule_matches("repro/service/blk001_coroutine.py", "BLK001")

    def test_negative_fixture(self):
        assert rule_findings("repro/service/blk001_ok.py", "BLK001") == []

    def test_transitive_chain_named(self):
        findings = rule_findings(
            "repro/service/blk001_coroutine.py", "BLK001"
        )
        transitive = next(
            f.message for f in findings if "handle_transitive" in f.message
        )
        assert "via handle_transitive() -> _drain()" in transitive

    def test_only_service_coroutines_in_scope(self, lint_snippet):
        # same blocking body, but outside repro.service: out of scope
        findings = lint_snippet(
            "import time\n"
            "async def tick():\n"
            "    time.sleep(1)\n",
            name="repro/core/not_service.py",
            rules={"BLK001"},
        )
        assert findings == []
