"""Shared helpers for the lint test suite.

Positive fixtures under ``fixtures/repro/`` mark every line a rule must
flag with ``# EXPECT: RULE[, RULE]``; :func:`assert_rule_matches` runs
one rule over a fixture and compares flagged line numbers against the
markers in both directions, so a rule that over- or under-fires fails
with the exact line diff.
"""

import re
from pathlib import Path

import pytest

from repro.lint.engine import lint_file

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*(?P<rules>[A-Z0-9_]+(?:\s*,\s*[A-Z0-9_]+)*)")


def expected_lines(path: Path, rule: str) -> list[int]:
    """1-based lines carrying an ``# EXPECT:`` marker naming ``rule``."""
    out = []
    for lineno, text in enumerate(path.read_text().splitlines(), 1):
        m = _EXPECT_RE.search(text)
        if m and rule in [r.strip() for r in m.group("rules").split(",")]:
            out.append(lineno)
    return out


def rule_findings(relpath: str, rule: str):
    """Run a single rule over one fixture file."""
    path = FIXTURES / relpath
    return lint_file(path, rule_filter={rule}, display_path=relpath)


def assert_rule_matches(relpath: str, rule: str) -> None:
    """Findings of ``rule`` on the fixture == its EXPECT-marked lines."""
    path = FIXTURES / relpath
    expected = expected_lines(path, rule)
    got = sorted(f.line for f in rule_findings(relpath, rule) if f.rule == rule)
    assert got == expected, (
        f"{relpath}: {rule} flagged lines {got}, fixture expects {expected}"
    )


@pytest.fixture
def lint_snippet(tmp_path):
    """Write source to a scratch file and lint it (optionally filtered)."""

    def _lint(source, name="scratch.py", rules=None):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        rule_filter = set(rules) if rules is not None else None
        return lint_file(path, rule_filter=rule_filter, display_path=name)

    return _lint
