"""The linter must hold its own gate: ``repro lint src/`` stays clean.

Every waiver on the tree is justified (LNT001 would fire otherwise) and
used (LNT002), so this test is exactly the CI gate: zero unwaived,
unbaselined findings over the shipped sources.
"""

from pathlib import Path

from repro.lint.engine import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSelfHost:
    def test_src_tree_is_clean(self):
        result = run_lint([REPO_ROOT / "src"])
        offending = [f.render() for f in result.active]
        assert offending == [], "\n".join(offending)
        assert result.exit_code == 0
        assert result.files_checked > 50

    def test_src_tree_is_clean_against_checked_in_baseline(self):
        result = run_lint(
            [REPO_ROOT / "src"],
            baseline=REPO_ROOT / "lint-baseline.json",
        )
        assert result.exit_code == 0
        # the baseline is empty: nothing may hide behind it
        assert result.baselined == 0

    def test_every_waiver_on_the_tree_is_justified_and_used(self):
        result = run_lint([REPO_ROOT / "src"])
        meta = [f for f in result.findings if f.rule.startswith("LNT")]
        assert meta == [], "\n".join(f.render() for f in meta)
