"""``repro lint`` CLI: exit codes, filters, formats, baseline flags."""

import json
import textwrap

import pytest

from repro.cli import main

CLEAN = "def identity(x):\n    return x\n"

VIOLATION = textwrap.dedent(
    """
    import time


    def stamp():
        return time.time()
    """
)


@pytest.fixture
def scratch(tmp_path):
    def _write(source, name="scratch.py"):
        path = tmp_path / name
        path.write_text(source)
        return str(path)

    return _write


class TestExitCodes:
    def test_clean_file_exits_zero(self, scratch):
        assert main(["-q", "lint", scratch(CLEAN)]) == 0

    def test_seeded_det001_violation_fails_the_gate(self, scratch, capsys):
        # acceptance criterion: a wall-clock read in a scratch file must
        # flip the lint exit code to 1 (this is what CI runs on src/)
        rc = main(["-q", "lint", scratch(VIOLATION)])
        assert rc == 1
        assert "DET001" in capsys.readouterr().out

    def test_no_paths_is_usage_error(self):
        assert main(["-q", "lint"]) == 2

    def test_unknown_rule_is_usage_error(self, scratch):
        assert main(["-q", "lint", scratch(CLEAN), "--rule", "NOPE999"]) == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        assert main(["-q", "lint", str(tmp_path / "absent.py")]) == 2

    def test_unreadable_baseline_is_usage_error(self, scratch, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = main(["-q", "lint", scratch(CLEAN), "--baseline", str(bad)])
        assert rc == 2


class TestFiltersAndFormats:
    def test_rule_filter_limits_findings(self, scratch, capsys):
        path = scratch(VIOLATION)
        rc = main(["-q", "lint", path, "--rule", "EXC001"])
        out = capsys.readouterr().out
        assert rc == 0  # the DET001 hit is filtered out
        assert "DET001" not in out

    def test_rule_filter_is_case_insensitive(self, scratch):
        assert main(["-q", "lint", scratch(VIOLATION), "--rule", "det001"]) == 1

    def test_json_format_parses_and_carries_exit_code(self, scratch, capsys):
        rc = main(["-q", "lint", scratch(VIOLATION), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == payload["exit_code"] == 1
        assert payload["findings"][0]["rule"] == "DET001"

    def test_list_rules_covers_the_catalogue(self, capsys):
        assert main(["-q", "lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "DET001",
            "DET002",
            "DET003",
            "PAR001",
            "EXC001",
            "API001",
            "LNT001",
        ):
            assert rule_id in out


class TestBaselineFlow:
    def test_write_then_use_baseline(self, scratch, tmp_path, capsys):
        path = scratch(VIOLATION)
        baseline = str(tmp_path / "baseline.json")

        assert main(["-q", "lint", path, "--write-baseline", baseline]) == 0
        capsys.readouterr()  # drop the snapshot run's output

        assert main(["-q", "lint", path, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_show_suppressed_reveals_baselined_findings(
        self, scratch, tmp_path, capsys
    ):
        path = scratch(VIOLATION)
        baseline = str(tmp_path / "baseline.json")
        main(["-q", "lint", path, "--write-baseline", baseline])
        capsys.readouterr()

        main(["-q", "lint", path, "--baseline", baseline, "--show-suppressed"])
        assert "[baselined]" in capsys.readouterr().out
