"""RACE002 positive: two classes acquire each other's locks in
opposite orders — the classic ABBA deadlock.

``Accountant.credit`` holds ``Accountant._lock`` and calls into
``Auditor.verify`` (which takes ``Auditor._lock``); ``Auditor.audit``
holds ``Auditor._lock`` and calls back into ``Accountant.credit``.
The cycle is reported once, anchored at the call site inside the
holder whose lock sorts first.
"""

import threading


class Accountant:
    def __init__(self, peer: "Auditor"):
        self._lock = threading.Lock()
        self._peer = peer
        self._balance = 0

    def credit(self, amount):
        with self._lock:
            self._balance += amount
            self._peer.verify(amount)  # EXPECT: RACE002


class Auditor:
    def __init__(self, peer: "Accountant"):
        self._lock = threading.Lock()
        self._peer = peer
        self._log = []

    def verify(self, amount):
        with self._lock:
            self._log.append(amount)

    def audit(self):
        with self._lock:
            self._peer.credit(0)
