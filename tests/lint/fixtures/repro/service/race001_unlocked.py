"""RACE001 positive: guarded attributes touched outside the lock.

``_items`` and ``_closed`` are written under ``with self._lock`` by
non-init methods, which makes them guarded; every unlocked read or
write (outside ``__init__`` and ``*_locked`` helpers) must be flagged,
as must calling a ``*_locked`` helper without holding the lock.
"""

import threading


class LeaseTable:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}
        self._closed = False

    def add(self, key, value):
        with self._lock:
            self._items[key] = value

    def close(self):
        with self._lock:
            self._closed = True

    def peek(self, key):
        return self._items.get(key)  # EXPECT: RACE001

    def drop_all(self):
        self._items = {}  # EXPECT: RACE001

    def is_closed(self):
        return self._closed  # EXPECT: RACE001

    def _expire_locked(self, now):
        self._items = {
            k: v for k, v in self._items.items() if v > now
        }

    def expire(self, now):
        self._expire_locked(now)  # EXPECT: RACE001
