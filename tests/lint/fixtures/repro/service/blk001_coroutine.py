"""BLK001 positive: blocking calls reachable from service coroutines.

A direct ``time.sleep`` anchors at its own line; a transitive one
anchors at the first call hop inside the coroutine (the witness chain
names the rest).
"""

import subprocess
import time


def _drain():
    return subprocess.run(["sync"], check=False)


async def handle_direct(request):
    time.sleep(0.1)  # EXPECT: BLK001
    return request


async def handle_transitive(request):
    _drain()  # EXPECT: BLK001
    return request
