"""RACE002 negative: a consistent global acquisition order.

Both paths that hold two locks at once take ``Accountant._lock``
before ``Auditor._lock``, so the lock-order graph is acyclic.
"""

import threading


class Accountant:
    def __init__(self, peer: "Auditor"):
        self._lock = threading.Lock()
        self._peer = peer
        self._balance = 0

    def credit(self, amount):
        with self._lock:
            self._balance += amount
            self._peer.verify(amount)

    def settle(self):
        with self._lock:
            self._peer.verify(self._balance)


class Auditor:
    def __init__(self):
        self._lock = threading.Lock()
        self._log = []

    def verify(self, amount):
        with self._lock:
            self._log.append(amount)
