"""BLK001 negative: coroutines that stay on asyncio primitives.

``asyncio.sleep`` never blocks the loop; a *synchronous* helper that
sleeps is only a finding when a coroutine actually reaches it; and an
origin-line waiver excuses a deliberate exception.
"""

import asyncio
import time


def sync_retry_pause():
    # never called from a coroutine in this module
    time.sleep(0.5)


def _waived_pause():
    # repro-lint: disable=BLK001 -- fixture: deliberate origin waiver
    time.sleep(0.01)


async def handle(request):
    await asyncio.sleep(0.1)
    return request


async def handle_waived(request):
    _waived_pause()
    return request
