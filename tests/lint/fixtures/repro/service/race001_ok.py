"""RACE001 negative: clean lock discipline.

Every access of a guarded attribute happens inside ``with self._lock``
or in ``__init__`` (exempt: no concurrent aliases exist yet), and the
``*_locked`` helper is only invoked while holding the lock.  The
unguarded ``total`` attribute (never written under the lock) may be
read freely.
"""

import threading


class LeaseTable:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}
        self.total = 0

    def add(self, key, value):
        with self._lock:
            self._items[key] = value

    def snapshot(self):
        with self._lock:
            return dict(self._items)

    def _expire_locked(self, now):
        self._items = {
            k: v for k, v in self._items.items() if v > now
        }

    def expire(self, now):
        with self._lock:
            self._expire_locked(now)

    def capacity(self):
        return self.total
