"""API001 positive fixture: public surface with annotation gaps."""


def make_queue(depth):  # EXPECT: API001
    return [None] * depth


def drain(queue, limit: int):  # EXPECT: API001
    return queue[:limit]


class Policy:
    def __init__(self, horizon):  # EXPECT: API001
        self.horizon = horizon

    def admit(self, job) -> bool:  # EXPECT: API001
        return job is not None

    def _internal(self, job):
        return job
