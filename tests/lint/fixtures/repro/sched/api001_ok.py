"""API001 negative fixture: fully annotated or private callables."""

from __future__ import annotations


def make_queue(depth: int) -> list:
    return [None] * depth


class Policy:
    def __init__(self, horizon: float) -> None:
        self.horizon = horizon

    @staticmethod
    def version() -> str:
        return "1"

    def _internal(self, job):
        return job


def _helper(x):
    return x
