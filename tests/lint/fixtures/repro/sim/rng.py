"""DET001 negative fixture: this path resolves to module ``sim.rng``,
the one blessed module allowed to touch numpy RNG machinery."""

import numpy as np


def make_generator(seed):
    return np.random.default_rng(seed)


def reseed_legacy(seed):
    np.random.seed(seed)
    return np.random.RandomState(seed)
