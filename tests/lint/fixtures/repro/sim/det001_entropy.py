"""DET001 positive fixture: banned entropy/time sources in a strict
package (this path resolves to module ``sim.det001_entropy``)."""

import os
import time
import uuid

import numpy as np
import random  # EXPECT: DET001
from random import shuffle  # EXPECT: DET001


def stamp():
    return time.time()  # EXPECT: DET001


def measure():
    return time.perf_counter()  # EXPECT: DET001


def fresh_generator():
    return np.random.default_rng()  # EXPECT: DET001


def draw(n):
    return np.random.normal(size=n)  # EXPECT: DET001


def token():
    return os.urandom(8)  # EXPECT: DET001


def tag():
    return uuid.uuid4()  # EXPECT: DET001


def pick(items):
    return random.choice(items)  # EXPECT: DET001
