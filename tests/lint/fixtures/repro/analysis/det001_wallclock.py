"""DET001 fixture outside the strict packages: wall-clock reads are
flagged everywhere, timing clocks only inside the simulation substrate
(so ``perf_counter`` here is legitimate instrumentation)."""

import time
from datetime import datetime


def stamp():
    return time.time()  # EXPECT: DET001


def now():
    return datetime.now()  # EXPECT: DET001


def measure(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
