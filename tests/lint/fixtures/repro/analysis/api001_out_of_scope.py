"""API001 negative fixture: unannotated, but outside the typed packages
(``analysis`` is not covered by the strict mypy gate)."""


def unannotated(frame):
    return frame
