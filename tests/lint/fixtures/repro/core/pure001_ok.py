"""PURE001 negative: declared-pure functions whose effect sets are
genuinely empty — or contain only *tolerated* kinds.

Covers the deliberate carve-outs: host timing reads (``perf_counter``
feeds diagnostics the canonical payloads strip), generators minted
from a constant seed (pinned calibration streams), and effects behind
an origin-line waiver.
"""

import json
import time

import numpy as np

from repro.contracts import declared_pure

_CAL_SEED = 7


def _canon(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _pinned_stream():
    return np.random.default_rng(_CAL_SEED + 1).random()


def _waived_origin():
    # repro-lint: disable=PURE001 -- fixture: deliberate origin waiver
    return time.time()


@declared_pure
def canonical(payload):
    return _canon(payload)


@declared_pure
def timed_canonical(payload):
    t0 = time.perf_counter()
    out = _canon(payload)
    return out, time.perf_counter() - t0


@declared_pure
def calibrated():
    return _pinned_stream()


@declared_pure
def excused():
    return _waived_origin()
