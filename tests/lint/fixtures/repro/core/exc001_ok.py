"""EXC001 negative fixture: specific handlers and re-raising boundaries."""


def specific(task):
    try:
        return task()
    except ValueError:
        return None


def boundary(task):
    try:
        return task()
    except Exception as exc:
        raise RuntimeError("task failed") from exc


def conditional_reraise(task, strict):
    try:
        return task()
    except Exception:
        if strict:
            raise
        return None
