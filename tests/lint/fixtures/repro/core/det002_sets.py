"""DET002 positive fixture: set iteration order leaking into results."""


def loop_over_set(items):
    seen = set(items)
    names = []
    for name in seen:  # EXPECT: DET002
        names.append(name)
    return names


def comprehension(tags: set):
    return [t.upper() for t in tags]  # EXPECT: DET002


def materialise(items):
    pending = {i for i in items}
    return list(pending)  # EXPECT: DET002


def alias_chain(items):
    first = set(items)
    second = first
    return tuple(second)  # EXPECT: DET002


def union_result(a: set, b: set):
    return [x for x in a | b]  # EXPECT: DET002
