"""DET003 negative fixture: order-independent accumulation."""

import math


def total_sorted(values):
    bag = set(values)
    return sum(sorted(bag))


def total_fsum(values):
    bag = set(values)
    return math.fsum(sorted(bag))


def total_sequence(values):
    return sum(values)
