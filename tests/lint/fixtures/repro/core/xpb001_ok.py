"""XPB001 negative: plain data across the boundary.

Module-level functions are picklable by qualified name; configs,
indices and primitive initargs ship cleanly.  A lambda passed to an
ordinary call (not a submission) is out of scope.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor


def _worker(config, replication):
    return (config, replication)


def _setup(seed):
    return seed


def submit_plain(pool, configs):
    return [
        pool.submit(_worker, cfg, rep)
        for rep in range(3)
        for cfg in configs
    ]


def pool_with_plain_initargs():
    return ProcessPoolExecutor(initializer=_setup, initargs=(7,))


def pickle_plain(rows):
    return pickle.dumps(list(rows))


def sorted_by_key(rows):
    return sorted(rows, key=lambda r: r[0])
