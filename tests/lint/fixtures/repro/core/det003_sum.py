"""DET003 positive fixture: float accumulation in set hash order."""


def total_direct(values):
    bag = set(values)
    return sum(bag)  # EXPECT: DET003


def total_genexp(values):
    bag = set(values)
    return sum(v * 2.0 for v in bag)  # EXPECT: DET002, DET003


def total_annotated(weights: frozenset):
    return sum(weights)  # EXPECT: DET003
