"""DET002 negative fixture: ordered or order-restored iteration."""


def sorted_iteration(items):
    seen = set(items)
    return [name for name in sorted(seen)]


def dict_iteration(table):
    return [key for key in table]


def list_materialise(rows):
    data = list(rows)
    return list(data)


def mixed_rebinding(items, flag):
    maybe = set(items)
    if flag:
        maybe = list(items)
    return list(maybe)
