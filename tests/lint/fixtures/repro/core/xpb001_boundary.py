"""XPB001 positive: statically unpicklable values crossing a process
boundary — lambdas, nested functions, locks, open handles, sockets,
``self`` of a lock-owning class.  Findings anchor at the offending
argument expression.
"""

import pickle
import socket
import threading
from concurrent.futures import ProcessPoolExecutor


def _worker(payload):
    return payload


def _setup(flag):
    return flag


def submit_lambda(pool):
    return pool.submit(lambda: 1)  # EXPECT: XPB001


def submit_nested(pool):
    def work():
        return 1

    return pool.submit(work)  # EXPECT: XPB001


def lock_in_initargs():
    lock = threading.Lock()
    return ProcessPoolExecutor(
        initializer=_setup,
        initargs=(lock,),  # EXPECT: XPB001
    )


def socket_to_process():
    conn = socket.socket()
    import multiprocessing

    return multiprocessing.Process(
        target=_worker,
        args=(conn,),  # EXPECT: XPB001
    )


def pickle_handle(path):
    fh = open(path)
    return pickle.dumps(fh)  # EXPECT: XPB001


class Dispatcher:
    def __init__(self):
        self._lock = threading.Lock()

    def submit_self(self, pool):
        return pool.submit(_worker, self)  # EXPECT: XPB001

    def submit_lock(self, pool):
        return pool.submit(_worker, self._lock)  # EXPECT: XPB001
