"""PURE002 positive: this file resolves to module ``repro.core.cache``,
so defining ``config_fingerprint`` *without* ``@declared_pure`` must
trigger the missing-contract rule (the registry pins that qualid)."""

import hashlib
import json


def config_fingerprint(config, schema_version=0):  # EXPECT: PURE002
    payload = {"schema": schema_version, "config": config}
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()
