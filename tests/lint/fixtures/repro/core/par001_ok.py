"""PAR001 negative fixture: immutable globals and local mutation."""

_LIMITS = (1, 2, 3)
_NAME = "worker"


def local_mutation(rows):
    cache = {}
    for row in rows:
        cache[row] = True
    return cache


def read_only():
    return _LIMITS[0], _NAME


class Tracker:
    def __init__(self):
        self.rows = []

    def add(self, row):
        self.rows.append(row)
