"""EXC001 positive fixture: broad handlers that never re-raise."""


def swallow_all(task):
    try:
        return task()
    except:  # EXPECT: EXC001  # noqa: E722
        return None


def swallow_exception(task):
    try:
        return task()
    except Exception:  # EXPECT: EXC001
        return None


def swallow_in_tuple(task):
    try:
        return task()
    except (ValueError, BaseException):  # EXPECT: EXC001
        return None
