"""PURE001 positive: declared-pure functions with banned effects.

Each offending function carries exactly one banned effect kind so the
finding count matches the EXPECT markers one-to-one (PURE001 reports
one finding per kind, anchored at the ``def`` line).
"""

import time

import numpy as np

from repro.contracts import declared_pure


def _draw():
    return np.random.default_rng().random()


def _middle():
    return _draw()


@declared_pure
def direct_wall_clock():  # EXPECT: PURE001
    return time.time()


@declared_pure
def transitive_rng():  # EXPECT: PURE001
    return _middle()


@declared_pure
def direct_io(path):  # EXPECT: PURE001
    with open(path) as fh:
        return fh.read()


COUNTER = 0


def _bump():
    global COUNTER
    COUNTER = COUNTER + 1


@declared_pure
def transitive_global_write():  # EXPECT: PURE001
    _bump()
    return COUNTER


@declared_pure
def direct_blocking():  # EXPECT: PURE001
    time.sleep(0.01)
    return 1
