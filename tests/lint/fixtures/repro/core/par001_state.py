"""PAR001 positive fixture: module-level state mutated at call time."""

_CACHE = {}
_COUNTER = 0
_RESULTS = []


def remember(key, value):
    _CACHE[key] = value  # EXPECT: PAR001


def bump():
    global _COUNTER
    _COUNTER += 1  # EXPECT: PAR001


def record(row):
    _RESULTS.append(row)  # EXPECT: PAR001


def forget(key):
    del _CACHE[key]  # EXPECT: PAR001
