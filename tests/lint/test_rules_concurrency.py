"""RACE001/RACE002: lock discipline and lock-order cycles."""

from .conftest import assert_rule_matches, rule_findings


class TestRace001:
    def test_positive_fixture(self):
        assert_rule_matches("repro/service/race001_unlocked.py", "RACE001")

    def test_negative_fixture(self):
        assert rule_findings("repro/service/race001_ok.py", "RACE001") == []

    def test_read_and_write_verbs(self):
        findings = rule_findings(
            "repro/service/race001_unlocked.py", "RACE001"
        )
        messages = [f.message for f in findings]
        assert any("reads self._items" in m for m in messages)
        assert any("writes self._items" in m for m in messages)
        assert any("_locked" in m and "without holding" in m
                   for m in messages)


class TestRace002:
    def test_cycle_fixture(self):
        assert_rule_matches("repro/service/race002_cycle.py", "RACE002")

    def test_consistent_order_fixture(self):
        assert rule_findings("repro/service/race002_ok.py", "RACE002") == []

    def test_cycle_message_names_both_orders(self):
        (finding,) = rule_findings(
            "repro/service/race002_cycle.py", "RACE002"
        )
        assert "lock-order cycle" in finding.message
        assert "Accountant._lock" in finding.message
        assert "Auditor._lock" in finding.message
