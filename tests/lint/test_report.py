"""Report renderers: JSON schema pin and text summary format."""

import json
import textwrap

import pytest

from repro.lint.engine import run_lint
from repro.lint.findings import FINDING_FIELDS
from repro.lint.report import render_json, render_text

SOURCE = textwrap.dedent(
    """
    import time


    def stamp():
        return time.time()


    def waived():
        return time.time()  # repro-lint: disable=DET001 -- test fixture
    """
)


@pytest.fixture
def result(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(SOURCE)
    return run_lint([mod])


class TestJson:
    def test_schema_and_top_level_keys(self, result):
        payload = json.loads(render_json(result))
        assert list(payload) == [
            "schema",
            "tool",
            "summary",
            "findings",
            "exit_code",
        ]
        assert payload["schema"] == 1
        assert payload["tool"] == "repro-lint"
        assert payload["exit_code"] == 1

    def test_summary_counts(self, result):
        payload = json.loads(render_json(result))
        assert payload["summary"] == {
            "files_checked": 1,
            "findings": 2,
            "errors": 1,
            "warnings": 0,
            "waived": 1,
            "baselined": 0,
        }

    def test_each_finding_matches_the_pinned_field_schema(self, result):
        payload = json.loads(render_json(result))
        for finding in payload["findings"]:
            assert tuple(finding) == FINDING_FIELDS
        waived_flags = sorted(f["waived"] for f in payload["findings"])
        assert waived_flags == [False, True]

    def test_output_is_deterministic(self, result):
        assert render_json(result) == render_json(result)


class TestText:
    def test_hides_suppressed_by_default(self, result):
        text = render_text(result)
        assert "[waived]" not in text
        assert "DET001" in text
        assert "checked 1 files: 1 errors, 0 warnings (1 waived, 0 baselined)" in text

    def test_show_suppressed_renders_the_waived_finding(self, result):
        text = render_text(result, show_suppressed=True)
        assert "[waived]" in text

    def test_line_format_is_path_line_col_rule(self, result):
        first = render_text(result).splitlines()[0]
        path, line, col, rest = first.split(":", 3)
        assert path.endswith("mod.py")
        assert line.isdigit() and col.isdigit()
        assert rest.strip().startswith("DET001 error")
