"""DET001/DET002/DET003 against their positive and negative fixtures."""

import textwrap

from repro.lint.findings import Severity

from .conftest import assert_rule_matches, rule_findings


class TestDet001:
    def test_flags_every_entropy_source_in_strict_package(self):
        assert_rule_matches("repro/sim/det001_entropy.py", "DET001")

    def test_blessed_rng_module_is_exempt(self):
        assert rule_findings("repro/sim/rng.py", "DET001") == []

    def test_wall_clock_flagged_outside_strict_packages(self):
        # time.time()/datetime.now() fire everywhere; perf_counter in
        # the same file (analysis package) stays legal instrumentation.
        assert_rule_matches("repro/analysis/det001_wallclock.py", "DET001")

    def test_findings_are_errors_with_guidance(self):
        findings = rule_findings("repro/sim/det001_entropy.py", "DET001")
        assert findings
        assert all(f.severity is Severity.ERROR for f in findings)
        assert any("RngFactory" in f.message for f in findings)

    def test_scratch_file_outside_repro_gets_wall_clock_only(self, lint_snippet):
        source = textwrap.dedent(
            """
            import time


            def stamp():
                return time.time()


            def measure():
                return time.perf_counter()
            """
        )
        findings = lint_snippet(source, rules={"DET001"})
        assert [f.snippet for f in findings] == ["return time.time()"]


class TestDet002:
    def test_flags_set_iteration_flavours(self):
        assert_rule_matches("repro/core/det002_sets.py", "DET002")

    def test_sorted_and_sequence_iteration_pass(self):
        assert rule_findings("repro/core/det002_ok.py", "DET002") == []

    def test_mentions_hash_order_and_fix(self):
        findings = rule_findings("repro/core/det002_sets.py", "DET002")
        assert all("sorted" in f.message for f in findings)


class TestDet003:
    def test_flags_sum_over_sets(self):
        assert_rule_matches("repro/core/det003_sum.py", "DET003")

    def test_ordered_accumulation_passes(self):
        assert rule_findings("repro/core/det003_ok.py", "DET003") == []

    def test_is_a_warning(self):
        findings = rule_findings("repro/core/det003_sum.py", "DET003")
        assert findings
        assert all(f.severity is Severity.WARNING for f in findings)
