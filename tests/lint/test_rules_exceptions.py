"""EXC001 against its positive and negative fixtures."""

from .conftest import assert_rule_matches, rule_findings


class TestExc001:
    def test_flags_broad_handlers_without_reraise(self):
        assert_rule_matches("repro/core/exc001_swallow.py", "EXC001")

    def test_specific_or_reraising_handlers_pass(self):
        assert rule_findings("repro/core/exc001_ok.py", "EXC001") == []

    def test_message_names_the_swallowed_invariants(self):
        findings = rule_findings("repro/core/exc001_swallow.py", "EXC001")
        assert findings
        assert all("InvariantError" in f.message for f in findings)
        assert all("SchedulerDownError" in f.message for f in findings)
