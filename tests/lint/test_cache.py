"""Incremental lint cache: content addressing, invalidation, and the
cold-vs-warm byte-identity requirement."""

import json

from repro.lint.cache import LintCache
from repro.lint.engine import run_lint
from repro.lint.findings import Finding, Severity


def _write_tree(root):
    pkg = root / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "a.py").write_text(
        "def helper(path: str = 'x') -> str:\n"
        "    return open(path).read()\n"
    )
    (pkg / "b.py").write_text(
        "from repro.contracts import declared_pure\n"
        "from .a import helper\n"
        "@declared_pure\n"
        "def root() -> str:\n"
        "    return helper()\n"
    )
    return root


class TestLintCache:
    def test_miss_then_hit(self, tmp_path):
        cache = LintCache(tmp_path / "c")
        src = "def f():\n    return 1\n"
        assert cache.load("x.py", src) is None
        finding = Finding(
            rule="DET001", severity=Severity.ERROR, path="x.py",
            line=1, col=0, message="m", snippet="s",
        )
        cache.store("x.py", src, [finding], None)
        loaded = cache.load("x.py", src)
        assert loaded is not None
        findings, facts = loaded
        assert facts is None
        assert [f.to_dict() for f in findings] == [finding.to_dict()]

    def test_content_change_misses(self, tmp_path):
        cache = LintCache(tmp_path / "c")
        cache.store("x.py", "def f():\n    pass\n", [], None)
        assert cache.load("x.py", "def f():\n    return 2\n") is None

    def test_path_change_misses(self, tmp_path):
        cache = LintCache(tmp_path / "c")
        src = "def f():\n    pass\n"
        cache.store("x.py", src, [], None)
        assert cache.load("y.py", src) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = LintCache(tmp_path / "c")
        src = "def f():\n    pass\n"
        cache.store("x.py", src, [], None)
        for entry in (tmp_path / "c").glob("*.json"):
            entry.write_text("{not json")
        assert cache.load("x.py", src) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = LintCache(tmp_path / "c")
        src = "def f():\n    pass\n"
        cache.store("x.py", src, [], None)
        for entry in (tmp_path / "c").glob("*.json"):
            payload = json.loads(entry.read_text())
            payload["schema"] = -1
            entry.write_text(json.dumps(payload))
        assert cache.load("x.py", src) is None

    def test_unwritable_cache_degrades_silently(self, tmp_path):
        blocker = tmp_path / "c"
        blocker.write_text("a file where the cache dir should be")
        cache = LintCache(blocker)
        cache.store("x.py", "def f():\n    pass\n", [], None)  # no raise
        assert cache.load("x.py", "def f():\n    pass\n") is None


class TestWarmRunEquivalence:
    def test_cold_and_warm_reports_are_byte_identical(self, tmp_path):
        from repro.lint.report import render_json

        tree = _write_tree(tmp_path / "tree")
        cache_dir = tmp_path / "cache"
        cold = run_lint([tree], cache_dir=cache_dir)
        warm = run_lint([tree], cache_dir=cache_dir)
        assert cold.files_cached == 0
        assert warm.files_cached == warm.files_checked > 0
        assert render_json(cold) == render_json(warm)

    def test_project_phase_is_recomputed_from_cached_summaries(
        self, tmp_path
    ):
        # editing only the LEAF file must re-judge the (cached, unchanged)
        # declared-pure root through the call graph: transitive
        # invalidation falls out of recomputing the project phase
        tree = _write_tree(tmp_path / "tree")
        cache_dir = tmp_path / "cache"
        first = run_lint([tree], cache_dir=cache_dir)
        assert [f.rule for f in first.active] == ["PURE001"]

        leaf = tree / "repro" / "core" / "a.py"
        leaf.write_text("def helper() -> int:\n    return 4\n")
        second = run_lint([tree], cache_dir=cache_dir)
        assert second.files_cached == second.files_checked - 1
        assert second.active == []
