"""Tests for the ``repro bench --profile`` harness."""

import pstats

from repro.bench.profiling import (
    PHASE_KEYS,
    ProfileReport,
    extract_hotspots,
    profile_sweep,
)
from repro.core.config import ExperimentConfig


def _tiny_config():
    return ExperimentConfig(
        n_clusters=2, nodes_per_cluster=8, duration=120.0,
        offered_load=1.0, drain=True, seed=3,
    )


class TestProfileSweep:
    def test_smoke_attributes_phases_and_hotspots(self):
        report = profile_sweep(_tiny_config(), ["R2", "ALL"], 1, top=10)
        assert report.n_simulations == 2
        assert report.total_s > 0
        assert set(report.phases) == set(PHASE_KEYS)
        # The event loop always costs something; generation may round
        # to ~0 on a tiny grid but must be present and non-negative.
        assert report.phases["simulate_s"] > 0
        assert all(v >= 0 for v in report.phases.values())
        assert set(report.per_scheme) == {"R2", "ALL"}
        assert report.hotspots, "expected at least one repro-package frame"
        for row in report.hotspots:
            assert row["file"].startswith("repro/")
            assert row["cumtime_s"] >= row["tottime_s"] >= 0

    def test_hotspots_sorted_by_cumulative_time(self):
        report = profile_sweep(_tiny_config(), ["R2"], 1, top=15)
        cums = [row["cumtime_s"] for row in report.hotspots]
        assert cums == sorted(cums, reverse=True)

    def test_render_mentions_every_phase(self):
        report = profile_sweep(_tiny_config(), ["R2"], 1, top=3)
        text = report.render()
        for key in PHASE_KEYS:
            assert key in text
        assert "hottest functions" in text

    def test_as_dict_round_trips_fields(self):
        report = ProfileReport(
            total_s=1.0, n_simulations=2,
            phases={"simulate_s": 0.5}, per_scheme={"R2": 0.4},
            hotspots=[{"function": "f", "file": "repro/x.py", "line": 1,
                       "ncalls": 2, "tottime_s": 0.1, "cumtime_s": 0.2}],
        )
        d = report.as_dict()
        assert d["phases_s"] == {"simulate_s": 0.5}
        assert d["per_scheme_s"] == {"R2": 0.4}
        assert d["hotspots"][0]["function"] == "f"


class TestExtractHotspots:
    def _stats(self):
        import cProfile

        prof = cProfile.Profile()
        prof.enable()
        sum(range(1000))
        prof.disable()
        return pstats.Stats(prof)

    def test_package_only_filters_foreign_frames(self):
        rows = extract_hotspots(self._stats(), top=50, package_only=True)
        assert all(r["file"].startswith("repro/") for r in rows)

    def test_unfiltered_keeps_builtin_frames(self):
        rows = extract_hotspots(self._stats(), top=50, package_only=False)
        assert rows  # the sum() frame at minimum
