"""Tests for ``repro bench --compare`` payload diffing."""

import json

import pytest

from repro.bench.compare import (
    REGRESSION_THRESHOLD,
    compare_payloads,
    load_bench_payload,
)


def _payload(**timings):
    return {"timings_s": timings}


class TestComparePayloads:
    def test_no_regression_within_threshold(self):
        cmp = compare_payloads(
            _payload(serial=10.0, parallel=5.0),
            _payload(serial=11.0, parallel=5.9),
        )
        assert cmp.ok
        assert [r["name"] for r in cmp.rows] == ["parallel", "serial"]
        assert not cmp.missing

    def test_regression_beyond_threshold_fails(self):
        cmp = compare_payloads(
            _payload(serial=10.0), _payload(serial=12.5)
        )
        assert not cmp.ok
        assert [r["name"] for r in cmp.regressions] == ["serial"]
        assert "REGRESSION" in cmp.render()
        assert "FAIL" in cmp.render()

    def test_exact_threshold_is_not_a_regression(self):
        cmp = compare_payloads(_payload(serial=10.0), _payload(serial=12.0))
        assert cmp.ok  # new == old * (1 + 0.20): boundary passes

    def test_speedup_reported_with_negative_delta(self):
        cmp = compare_payloads(_payload(serial=10.0), _payload(serial=5.0))
        assert cmp.ok
        assert cmp.rows[0]["ratio"] == 0.5
        assert "-50.0%" in cmp.render()

    def test_missing_benchmarks_reported_not_failed(self):
        cmp = compare_payloads(
            _payload(serial=10.0, gone=1.0), _payload(serial=10.0, new=1.0)
        )
        assert cmp.ok
        assert sorted(cmp.missing) == ["gone", "new"]
        assert "only one payload" in cmp.render()

    def test_custom_threshold(self):
        old, new = _payload(serial=10.0), _payload(serial=10.5)
        assert compare_payloads(old, new, threshold=0.10).ok
        assert not compare_payloads(old, new, threshold=0.01).ok
        assert REGRESSION_THRESHOLD == 0.20

    def test_zero_old_time_regresses_as_infinite_ratio(self):
        cmp = compare_payloads(_payload(serial=0.0), _payload(serial=1.0))
        assert cmp.rows[0]["ratio"] == float("inf")
        assert not cmp.ok


class TestLoadBenchPayload:
    def test_raw_payload(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_payload(serial=1.0)))
        assert load_bench_payload(path)["timings_s"] == {"serial": 1.0}

    def test_trajectory_wrapper_uses_after_half(self, tmp_path):
        path = tmp_path / "BENCH_6.json"
        path.write_text(json.dumps({
            "pr": 6,
            "before": _payload(serial=9.8),
            "after": _payload(serial=7.0),
        }))
        assert load_bench_payload(path)["timings_s"] == {"serial": 7.0}

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="not a bench payload"):
            load_bench_payload(path)


class TestCheckedInTrajectory:
    def test_bench_6_artifact_is_loadable_and_improved(self):
        """The repo's own trajectory artifact stays well-formed."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        artifact = root / "BENCH_6.json"
        data = json.loads(artifact.read_text())
        assert data["pr"] == 6
        after = load_bench_payload(artifact)
        cmp = compare_payloads(data["before"], after)
        # The PR's own before/after must never read as a regression.
        assert cmp.ok
        assert after["timings_s"]["serial"] < data["before"]["timings_s"]["serial"]
