"""Unit and property tests for the availability profile."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.profile import Profile, ProfileError


class TestConstruction:
    def test_initial_segment(self):
        p = Profile(0.0, 5, 8)
        assert p.segments() == [(0.0, 5)]

    def test_free_now_out_of_bounds(self):
        with pytest.raises(ValueError):
            Profile(0.0, 9, 8)
        with pytest.raises(ValueError):
            Profile(0.0, -1, 8)

    def test_from_running(self):
        p = Profile.from_running(0.0, 8, [(10.0, 3), (5.0, 2)])
        assert p.free_at(0.0) == 3
        assert p.free_at(5.0) == 5
        assert p.free_at(10.0) == 8

    def test_from_running_overcommitted(self):
        with pytest.raises(ProfileError):
            Profile.from_running(0.0, 4, [(10.0, 3), (5.0, 2)])

    def test_from_running_past_release_clamped(self):
        p = Profile.from_running(10.0, 8, [(5.0, 3)])
        assert p.free_at(10.0) == 8


class TestAdjust:
    def test_reserve_creates_window(self):
        p = Profile(0.0, 8, 8)
        p.reserve(10.0, 5.0, 3)
        assert p.free_at(9.9) == 8
        assert p.free_at(10.0) == 5
        assert p.free_at(14.9) == 5
        assert p.free_at(15.0) == 8

    def test_nested_reservations(self):
        p = Profile(0.0, 8, 8)
        p.reserve(0.0, 10.0, 4)
        p.reserve(2.0, 4.0, 4)
        assert p.free_at(1.0) == 4
        assert p.free_at(3.0) == 0
        assert p.free_at(7.0) == 4

    def test_release_window_undoes_reserve(self):
        p = Profile(0.0, 8, 8)
        p.reserve(5.0, 10.0, 3)
        p.release_window(5.0, 15.0, 3)
        assert all(f == 8 for _, f in p.segments())

    def test_overcommit_rejected_and_rolled_back(self):
        p = Profile(0.0, 8, 8)
        p.reserve(0.0, 10.0, 6)
        probes = [0.0, 4.9, 5.0, 9.9, 10.0, 14.9, 15.0, 20.0]
        before = [p.free_at(t) for t in probes]
        with pytest.raises(ProfileError):
            p.reserve(5.0, 10.0, 4)
        assert [p.free_at(t) for t in probes] == before
        p.check_invariants()

    def test_release_above_capacity_rejected(self):
        p = Profile(0.0, 8, 8)
        with pytest.raises(ProfileError):
            p.release_window(0.0, 5.0, 1)

    def test_adjust_before_origin_rejected(self):
        p = Profile(10.0, 8, 8)
        with pytest.raises(ProfileError):
            p.reserve(5.0, 2.0, 1)

    def test_empty_window_rejected(self):
        p = Profile(0.0, 8, 8)
        with pytest.raises(ValueError):
            p.adjust(5.0, 5.0, -1)

    def test_infinite_end(self):
        p = Profile(0.0, 8, 8)
        p.adjust(5.0, math.inf, -3)
        assert p.free_at(1e12) == 5


class TestAdjustBatching:
    """The in-place fast path and the single-splice slow path must agree."""

    def test_existing_breakpoints_add_no_segments(self):
        """Releasing over the exact window that created a reservation is
        the dominant churn pattern and must not grow the arrays."""
        p = Profile(0.0, 8, 8)
        p.reserve(10.0, 5.0, 3)
        n_segments = len(p)
        p.reserve(10.0, 5.0, 2)  # same window: both edges exist already
        assert len(p) == n_segments
        assert p.free_at(12.0) == 3
        p.release_window(10.0, 15.0, 5)
        assert len(p) == n_segments
        assert all(f == 8 for _, f in p.segments())
        p.check_invariants()

    def test_splice_spanning_many_segments(self):
        p = Profile(0.0, 8, 8)
        for k in range(4):
            p.reserve(10.0 * k + 5.0, 2.0, 1)
        before = p.segments()
        p.adjust(2.0, 33.0, -1)  # spans all four windows, splits both edges
        p.check_invariants()
        # Every pre-existing breakpoint inside [2, 33) dropped by one.
        for t, f in before:
            if 2.0 <= t < 33.0:
                assert p.free_at(t) == f - 1
            elif t >= 33.0:
                assert p.free_at(t) == f
        # Edges split exactly once each.
        assert p.free_at(1.9) == 8 and p.free_at(2.0) == 7
        assert p.free_at(32.9) == 7 and p.free_at(33.0) == 8

    def test_failure_leaves_no_trace_in_split_path(self):
        """Validation happens before the splice, so a rejected window
        that would have split both edges changes nothing."""
        p = Profile(0.0, 8, 8)
        p.reserve(10.0, 10.0, 7)  # free=1 over [10, 20)
        before = p.segments()
        with pytest.raises(ProfileError):
            p.adjust(5.0, 25.0, -2)  # would go negative inside [10, 20)
        assert p.segments() == before
        p.check_invariants()

    def test_fast_and_slow_paths_agree(self):
        """Applying the same logical window via pre-split breakpoints or
        via fresh splits yields identical step functions."""
        fast = Profile(0.0, 16, 16)
        fast.adjust(5.0, 9.0, -0)  # no-op
        fast.reserve(5.0, 4.0, 1)   # creates breakpoints 5 and 9
        fast.reserve(5.0, 4.0, 2)   # fast path
        slow = Profile(0.0, 16, 16)
        slow.reserve(5.0, 4.0, 3)   # single splice creating both edges
        assert fast.segments() == slow.segments()


class TestFindStart:
    def test_immediate_when_free(self):
        p = Profile(0.0, 8, 8)
        assert p.find_start(4, 10.0, 0.0) == 0.0

    def test_waits_for_release(self):
        p = Profile.from_running(0.0, 8, [(10.0, 8)])
        assert p.find_start(4, 5.0, 0.0) == 10.0

    def test_hole_too_short_is_skipped(self):
        p = Profile(0.0, 8, 8)
        # Free [0,5), busy [5,15), free after.
        p.reserve(5.0, 10.0, 8)
        assert p.find_start(1, 4.0, 0.0) == 0.0   # fits in the hole
        assert p.find_start(1, 6.0, 0.0) == 15.0  # does not fit

    def test_respects_earliest(self):
        p = Profile(0.0, 8, 8)
        assert p.find_start(2, 5.0, 7.5) == 7.5

    def test_earliest_inside_busy_segment(self):
        p = Profile(0.0, 8, 8)
        p.reserve(0.0, 10.0, 8)
        assert p.find_start(3, 2.0, 4.0) == 10.0

    def test_too_many_nodes_rejected(self):
        p = Profile(0.0, 8, 8)
        with pytest.raises(ProfileError):
            p.find_start(9, 1.0, 0.0)

    def test_nonpositive_args_rejected(self):
        p = Profile(0.0, 8, 8)
        with pytest.raises(ValueError):
            p.find_start(0, 1.0, 0.0)
        with pytest.raises(ValueError):
            p.find_start(1, 0.0, 0.0)


class TestCanPlace:
    def test_simple_feasible(self):
        p = Profile(0.0, 8, 8)
        assert p.can_place(0.0, 10.0, 8)

    def test_blocked_by_future_reservation(self):
        p = Profile(0.0, 8, 8)
        p.reserve(5.0, 5.0, 6)
        assert p.can_place(0.0, 4.0, 4)
        assert not p.can_place(0.0, 6.0, 4)

    def test_bonus_ignores_own_reservation(self):
        p = Profile(0.0, 8, 8)
        p.reserve(5.0, 5.0, 6)  # this is "my own" reservation
        # Without the bonus a 6-node 10s placement at 0 fails...
        assert not p.can_place(0.0, 10.0, 6)
        # ...with the bonus, the overlap region [5,10) gets my 6 back.
        assert p.can_place(0.0, 10.0, 6, bonus=(5.0, 10.0, 6))

    def test_partial_bonus_overlap_is_conservative(self):
        p = Profile(0.0, 8, 8)
        p.reserve(5.0, 5.0, 6)
        # Bonus window only covers part of the blocking segment: the
        # implementation must not grant it (conservative), so placement
        # still fails.
        assert not p.can_place(0.0, 10.0, 6, bonus=(6.0, 8.0, 6))


class TestTrim:
    def test_trim_drops_past_segments(self):
        p = Profile(0.0, 8, 8)
        p.reserve(1.0, 1.0, 2)
        p.reserve(5.0, 5.0, 3)
        p.trim(4.0)
        assert p.times[0] == 4.0
        assert p.free_at(4.0) == 8
        assert p.free_at(5.0) == 5

    def test_trim_before_first_segment_noop(self):
        p = Profile(5.0, 8, 8)
        p.trim(1.0)
        assert p.times[0] == 5.0

    def test_trim_preserves_invariants(self):
        p = Profile(0.0, 8, 8)
        for i in range(10):
            p.reserve(float(i), 2.0, 1)
        p.trim(5.5)
        p.check_invariants()


@settings(max_examples=200, deadline=None)
@given(
    reservations=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),   # start
            st.floats(min_value=0.1, max_value=50.0),    # duration
            st.integers(min_value=1, max_value=8),       # nodes
        ),
        max_size=12,
    ),
    query=st.tuples(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.1, max_value=60.0),
        st.floats(min_value=0.0, max_value=120.0),
    ),
)
def test_find_start_result_is_always_placeable(reservations, query):
    """Property: find_start's answer always passes can_place, is >= earliest,
    and no earlier breakpoint candidate would also fit."""
    p = Profile(0.0, 8, 8)
    for start, duration, nodes in reservations:
        try:
            p.reserve(start, duration, nodes)
        except ProfileError:
            pass  # overcommitted sample; skip that reservation
    p.check_invariants()
    nodes, duration, earliest = query
    t = p.find_start(nodes, duration, earliest)
    assert t >= earliest
    assert p.can_place(t, duration, nodes)
    # Minimality at breakpoints: no candidate start in [earliest, t) at a
    # breakpoint (or earliest itself) is feasible.
    candidates = [earliest] + [bt for bt in p.times if earliest < bt < t]
    for c in candidates:
        if c < t:
            assert not p.can_place(c, duration, nodes)
