"""Property tests pinning the profile against naive reference models.

``test_profile.py`` covers the operations individually; these
properties check whole random interleavings against an O(segments x
probes) reference implementation that recomputes availability from the
raw adjustment list — so any representation-level shortcut (the batched
splice in ``adjust``, the segment walk in ``can_place``) is compared
against first principles, not against itself.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.profile import Profile, ProfileError
from repro.sched.profile_ref import ReferenceProfile

TOTAL = 8

windows = st.tuples(
    st.floats(min_value=0.0, max_value=100.0),   # start
    st.floats(min_value=0.1, max_value=50.0),    # duration
    st.integers(min_value=-TOTAL, max_value=TOTAL).filter(lambda d: d != 0),
)


def reference_free(applied, t):
    """Availability at ``t`` implied by the raw adjustment list."""
    free = TOTAL
    for start, end, delta in applied:
        if start <= t < end:
            free += delta
    return free


def reference_feasible(applied, start, end, delta):
    """Whether the window keeps availability within [0, TOTAL] throughout."""
    points = {start} | {
        t for s, e, _ in applied for t in (s, e) if start < t < end
    }
    return all(
        0 <= reference_free(applied, t) + delta <= TOTAL for t in points
    )


@settings(max_examples=150, deadline=None)
@given(ops=st.lists(windows, max_size=15))
def test_adjust_interleavings_match_reference(ops):
    """Any interleaving of accepted/rejected adjustments leaves the profile
    equal to the reference model, with invariants intact."""
    p = Profile(0.0, TOTAL, TOTAL)
    applied = []
    for start, duration, delta in ops:
        end = start + duration
        feasible = reference_feasible(applied, start, end, delta)
        try:
            p.adjust(start, end, delta)
            assert feasible, f"profile accepted an infeasible {delta:+d}"
            applied.append((start, end, delta))
        except ProfileError:
            assert not feasible, f"profile rejected a feasible {delta:+d}"
        p.check_invariants()
    probes = {0.0, 1e9} | {t for s, e, _ in applied for t in (s, e)}
    for t in probes:
        assert p.free_at(t) == reference_free(applied, t)


def naive_can_place(p, start, duration, nodes, bonus):
    """Pointwise reference for can_place: split at every breakpoint of the
    profile *and* the bonus window, then check each constant piece."""
    end = start + duration
    points = {start} | {t for t in p.times if start < t < end}
    if bonus is not None:
        points |= {b for b in bonus[:2] if start < b < end}
    for t in points:
        avail = p.free_at(t)
        if bonus is not None and bonus[0] <= t < bonus[1]:
            avail += bonus[2]
        if avail < nodes:
            return False
    return True


@settings(max_examples=200, deadline=None)
@given(
    reservations=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=60.0),
            st.floats(min_value=0.1, max_value=30.0),
            st.integers(min_value=1, max_value=TOTAL),
        ),
        max_size=8,
    ),
    query=st.tuples(
        st.floats(min_value=0.0, max_value=80.0),   # start
        st.floats(min_value=0.1, max_value=40.0),   # duration
        st.integers(min_value=1, max_value=TOTAL),  # nodes
    ),
    bonus_window=st.one_of(
        st.none(),
        st.tuples(
            st.floats(min_value=0.0, max_value=90.0),
            st.floats(min_value=0.1, max_value=40.0),
            st.integers(min_value=1, max_value=TOTAL),
        ),
    ),
)
def test_can_place_with_bonus_matches_reference(reservations, query, bonus_window):
    """can_place is exact, not merely conservative: it agrees with the
    pointwise reference for every bonus window, including ones that only
    partially overlap a blocked segment."""
    p = Profile(0.0, TOTAL, TOTAL)
    for start, duration, nodes in reservations:
        try:
            p.reserve(start, duration, nodes)
        except ProfileError:
            pass  # overcommitted sample; skip
    start, duration, nodes = query
    bonus = None
    if bonus_window is not None:
        b_start, b_len, b_nodes = bonus_window
        bonus = (b_start, b_start + b_len, b_nodes)
    assert p.can_place(start, duration, nodes, bonus=bonus) == naive_can_place(
        p, start, duration, nodes, bonus
    )


@settings(max_examples=150, deadline=None)
@given(
    reservations=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=60.0),
            st.floats(min_value=0.1, max_value=30.0),
            st.integers(min_value=1, max_value=TOTAL),
        ),
        max_size=8,
    ),
    own=st.tuples(
        st.floats(min_value=0.0, max_value=60.0),
        st.floats(min_value=0.1, max_value=30.0),
        st.integers(min_value=1, max_value=TOTAL),
    ),
)
def test_bonus_equals_releasing_own_reservation(reservations, own):
    """The backfill idiom: passing one's own reservation window as the
    bonus must answer exactly like a profile with that window released."""
    p = Profile(0.0, TOTAL, TOTAL)
    for start, duration, nodes in reservations:
        try:
            p.reserve(start, duration, nodes)
        except ProfileError:
            pass
    o_start, o_dur, o_nodes = own
    try:
        p.reserve(o_start, o_dur, o_nodes)
    except ProfileError:
        return  # own reservation did not fit; nothing to compare
    released = p.copy()
    released.adjust(o_start, o_start + o_dur, +o_nodes)
    bonus = (o_start, o_start + o_dur, o_nodes)
    for t in [0.0, o_start, o_start + o_dur, *p.times[:6].tolist()]:
        for duration in (0.5, 5.0, 25.0):
            for nodes in (1, o_nodes, TOTAL):
                assert p.can_place(t, duration, nodes, bonus=bonus) == \
                    released.can_place(t, duration, nodes)


@settings(max_examples=150, deadline=None)
@given(
    reservations=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=60.0),
            st.floats(min_value=0.1, max_value=30.0),
            st.integers(min_value=1, max_value=TOTAL),
        ),
        max_size=10,
    ),
    cut=st.floats(min_value=0.0, max_value=80.0),
)
def test_trim_preserves_future(reservations, cut):
    """trim() must not change availability at or after the cut point."""
    p = Profile(0.0, TOTAL, TOTAL)
    applied = []
    for start, duration, nodes in reservations:
        try:
            p.reserve(start, duration, nodes)
            applied.append((start, start + duration, -nodes))
        except ProfileError:
            pass
    probes = [cut, cut + 0.1, cut + 20.0, 1e9] + [
        t for t in p.times if t >= cut
    ]
    before = [p.free_at(t) for t in probes]
    p.trim(cut)
    p.check_invariants()
    assert [p.free_at(t) for t in probes] == before
    assert math.isfinite(p.times[0])


# -- vectorised vs list-backed reference lockstep ---------------------------
#
# The numpy Profile replaced the original pure-Python implementation
# (kept verbatim as ReferenceProfile).  These interleavings drive both
# through identical operation sequences — mutations, trims and every
# query — asserting exact agreement on results, raised error types and
# the resulting step function after every single operation.

profile_ops = st.lists(
    st.one_of(
        st.tuples(st.just("adjust"), windows),
        st.tuples(
            st.just("trim"), st.floats(min_value=0.0, max_value=120.0)
        ),
        st.tuples(
            st.just("find_start"),
            st.tuples(
                st.integers(min_value=1, max_value=TOTAL),
                st.floats(min_value=0.1, max_value=60.0),
                st.floats(min_value=0.0, max_value=150.0),
            ),
        ),
        st.tuples(
            st.just("can_place"),
            st.tuples(
                st.floats(min_value=0.0, max_value=120.0),
                st.floats(min_value=0.1, max_value=60.0),
                st.integers(min_value=1, max_value=TOTAL),
                st.one_of(
                    st.none(),
                    st.tuples(
                        st.floats(min_value=0.0, max_value=120.0),
                        st.floats(min_value=0.1, max_value=60.0),
                        st.integers(min_value=1, max_value=TOTAL),
                    ),
                ),
            ),
        ),
        st.tuples(
            st.just("free_at"), st.floats(min_value=0.0, max_value=200.0)
        ),
    ),
    max_size=25,
)


def _apply(profile, op, arg):
    """Run one op; return ("ok", result) or ("err", exception type)."""
    try:
        if op == "adjust":
            start, duration, delta = arg
            return "ok", profile.adjust(start, start + duration, delta)
        if op == "trim":
            # Trims are only legal behind the query horizon; clamp to
            # the origin-relative past the same way CBF does (t <= now).
            return "ok", profile.trim(arg)
        if op == "find_start":
            nodes, duration, earliest = arg
            return "ok", profile.find_start(nodes, duration, earliest)
        if op == "can_place":
            start, duration, nodes, bonus_w = arg
            bonus = None
            if bonus_w is not None:
                b_start, b_len, b_nodes = bonus_w
                bonus = (b_start, b_start + b_len, b_nodes)
            return "ok", profile.can_place(start, duration, nodes, bonus=bonus)
        assert op == "free_at"
        return "ok", profile.free_at(arg)
    except (ProfileError, ValueError) as exc:
        return "err", type(exc)


@settings(max_examples=200, deadline=None)
@given(ops=profile_ops)
def test_vectorised_profile_matches_reference_lockstep(ops):
    """Exact behavioural equivalence of the numpy and list profiles."""
    vec = Profile(0.0, TOTAL, TOTAL)
    ref = ReferenceProfile(0.0, TOTAL, TOTAL)
    horizon = 0.0
    for op, arg in ops:
        if op == "trim":
            # Keep the interleaving legal: never trim past a point the
            # next query could look behind (mirrors CBF's trim(now)).
            arg = min(arg, horizon)
        elif op == "free_at":
            horizon = max(horizon, arg)
        elif op == "find_start":
            horizon = max(horizon, arg[2])
        elif op == "can_place":
            horizon = max(horizon, arg[0])
        got = _apply(vec, op, arg)
        want = _apply(ref, op, arg)
        assert got == want, f"{op}{arg}: vectorised {got} != reference {want}"
        vec.check_invariants()
        ref.check_invariants()
        assert vec.segments() == ref.segments(), f"state diverged after {op}"
        assert len(vec) == len(ref)


@settings(max_examples=100, deadline=None)
@given(
    running=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=80.0),
            st.integers(min_value=1, max_value=4),
        ),
        max_size=4,
    )
)
def test_from_running_matches_reference(running):
    """Construction from running holds agrees between implementations."""
    try:
        vec = Profile.from_running(10.0, TOTAL, running)
    except ProfileError:
        try:
            ReferenceProfile.from_running(10.0, TOTAL, running)
        except ProfileError:
            return
        raise AssertionError("reference accepted what vectorised rejected")
    ref = ReferenceProfile.from_running(10.0, TOTAL, running)
    assert vec.segments() == ref.segments()
