"""Property tests pinning the profile against naive reference models.

``test_profile.py`` covers the operations individually; these
properties check whole random interleavings against an O(segments x
probes) reference implementation that recomputes availability from the
raw adjustment list — so any representation-level shortcut (the batched
splice in ``adjust``, the segment walk in ``can_place``) is compared
against first principles, not against itself.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.profile import Profile, ProfileError

TOTAL = 8

windows = st.tuples(
    st.floats(min_value=0.0, max_value=100.0),   # start
    st.floats(min_value=0.1, max_value=50.0),    # duration
    st.integers(min_value=-TOTAL, max_value=TOTAL).filter(lambda d: d != 0),
)


def reference_free(applied, t):
    """Availability at ``t`` implied by the raw adjustment list."""
    free = TOTAL
    for start, end, delta in applied:
        if start <= t < end:
            free += delta
    return free


def reference_feasible(applied, start, end, delta):
    """Whether the window keeps availability within [0, TOTAL] throughout."""
    points = {start} | {
        t for s, e, _ in applied for t in (s, e) if start < t < end
    }
    return all(
        0 <= reference_free(applied, t) + delta <= TOTAL for t in points
    )


@settings(max_examples=150, deadline=None)
@given(ops=st.lists(windows, max_size=15))
def test_adjust_interleavings_match_reference(ops):
    """Any interleaving of accepted/rejected adjustments leaves the profile
    equal to the reference model, with invariants intact."""
    p = Profile(0.0, TOTAL, TOTAL)
    applied = []
    for start, duration, delta in ops:
        end = start + duration
        feasible = reference_feasible(applied, start, end, delta)
        try:
            p.adjust(start, end, delta)
            assert feasible, f"profile accepted an infeasible {delta:+d}"
            applied.append((start, end, delta))
        except ProfileError:
            assert not feasible, f"profile rejected a feasible {delta:+d}"
        p.check_invariants()
    probes = {0.0, 1e9} | {t for s, e, _ in applied for t in (s, e)}
    for t in probes:
        assert p.free_at(t) == reference_free(applied, t)


def naive_can_place(p, start, duration, nodes, bonus):
    """Pointwise reference for can_place: split at every breakpoint of the
    profile *and* the bonus window, then check each constant piece."""
    end = start + duration
    points = {start} | {t for t in p.times if start < t < end}
    if bonus is not None:
        points |= {b for b in bonus[:2] if start < b < end}
    for t in points:
        avail = p.free_at(t)
        if bonus is not None and bonus[0] <= t < bonus[1]:
            avail += bonus[2]
        if avail < nodes:
            return False
    return True


@settings(max_examples=200, deadline=None)
@given(
    reservations=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=60.0),
            st.floats(min_value=0.1, max_value=30.0),
            st.integers(min_value=1, max_value=TOTAL),
        ),
        max_size=8,
    ),
    query=st.tuples(
        st.floats(min_value=0.0, max_value=80.0),   # start
        st.floats(min_value=0.1, max_value=40.0),   # duration
        st.integers(min_value=1, max_value=TOTAL),  # nodes
    ),
    bonus_window=st.one_of(
        st.none(),
        st.tuples(
            st.floats(min_value=0.0, max_value=90.0),
            st.floats(min_value=0.1, max_value=40.0),
            st.integers(min_value=1, max_value=TOTAL),
        ),
    ),
)
def test_can_place_with_bonus_matches_reference(reservations, query, bonus_window):
    """can_place is exact, not merely conservative: it agrees with the
    pointwise reference for every bonus window, including ones that only
    partially overlap a blocked segment."""
    p = Profile(0.0, TOTAL, TOTAL)
    for start, duration, nodes in reservations:
        try:
            p.reserve(start, duration, nodes)
        except ProfileError:
            pass  # overcommitted sample; skip
    start, duration, nodes = query
    bonus = None
    if bonus_window is not None:
        b_start, b_len, b_nodes = bonus_window
        bonus = (b_start, b_start + b_len, b_nodes)
    assert p.can_place(start, duration, nodes, bonus=bonus) == naive_can_place(
        p, start, duration, nodes, bonus
    )


@settings(max_examples=150, deadline=None)
@given(
    reservations=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=60.0),
            st.floats(min_value=0.1, max_value=30.0),
            st.integers(min_value=1, max_value=TOTAL),
        ),
        max_size=8,
    ),
    own=st.tuples(
        st.floats(min_value=0.0, max_value=60.0),
        st.floats(min_value=0.1, max_value=30.0),
        st.integers(min_value=1, max_value=TOTAL),
    ),
)
def test_bonus_equals_releasing_own_reservation(reservations, own):
    """The backfill idiom: passing one's own reservation window as the
    bonus must answer exactly like a profile with that window released."""
    p = Profile(0.0, TOTAL, TOTAL)
    for start, duration, nodes in reservations:
        try:
            p.reserve(start, duration, nodes)
        except ProfileError:
            pass
    o_start, o_dur, o_nodes = own
    try:
        p.reserve(o_start, o_dur, o_nodes)
    except ProfileError:
        return  # own reservation did not fit; nothing to compare
    released = Profile(0.0, TOTAL, TOTAL)
    released.times = list(p.times)
    released.free = list(p.free)
    released.adjust(o_start, o_start + o_dur, +o_nodes)
    bonus = (o_start, o_start + o_dur, o_nodes)
    for t in [0.0, o_start, o_start + o_dur] + p.times[:6]:
        for duration in (0.5, 5.0, 25.0):
            for nodes in (1, o_nodes, TOTAL):
                assert p.can_place(t, duration, nodes, bonus=bonus) == \
                    released.can_place(t, duration, nodes)


@settings(max_examples=150, deadline=None)
@given(
    reservations=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=60.0),
            st.floats(min_value=0.1, max_value=30.0),
            st.integers(min_value=1, max_value=TOTAL),
        ),
        max_size=10,
    ),
    cut=st.floats(min_value=0.0, max_value=80.0),
)
def test_trim_preserves_future(reservations, cut):
    """trim() must not change availability at or after the cut point."""
    p = Profile(0.0, TOTAL, TOTAL)
    applied = []
    for start, duration, nodes in reservations:
        try:
            p.reserve(start, duration, nodes)
            applied.append((start, start + duration, -nodes))
        except ProfileError:
            pass
    probes = [cut, cut + 0.1, cut + 20.0, 1e9] + [
        t for t in p.times if t >= cut
    ]
    before = [p.free_at(t) for t in probes]
    p.trim(cut)
    p.check_invariants()
    assert [p.free_at(t) for t in probes] == before
    assert math.isfinite(p.times[0])
