"""Unit tests for the FCFS scheduler."""

import pytest

from repro.cluster.cluster import Cluster
from repro.sched import FCFSScheduler
from repro.sched.base import SchedulerError
from repro.sched.job import RequestState
from repro.sim.engine import Simulator

from ..conftest import make_request, submit_at


@pytest.fixture
def fcfs(sim, cluster):
    return FCFSScheduler(sim, cluster)


class TestBasics:
    def test_single_job_runs_immediately(self, sim, fcfs):
        r = make_request(nodes=4, runtime=10.0)
        fcfs.submit(r)
        sim.run()
        assert r.state is RequestState.COMPLETED
        assert r.start_time == 0.0
        assert r.end_time == 10.0

    def test_jobs_run_in_submission_order(self, sim, fcfs):
        # Each needs the full cluster: strictly sequential.
        rs = [make_request(nodes=8, runtime=5.0) for _ in range(3)]
        for r in rs:
            fcfs.submit(r)
        sim.run()
        assert [r.start_time for r in rs] == [0.0, 5.0, 10.0]

    def test_parallel_starts_when_fitting(self, sim, fcfs):
        a = make_request(nodes=4, runtime=10.0)
        b = make_request(nodes=4, runtime=10.0)
        fcfs.submit(a)
        fcfs.submit(b)
        sim.run()
        assert a.start_time == b.start_time == 0.0

    def test_head_blockade_no_skipping(self, sim, fcfs):
        """The defining FCFS property: a small job behind a big head waits."""
        running = make_request(nodes=6, runtime=100.0)
        big = make_request(nodes=8, runtime=10.0)
        small = make_request(nodes=1, runtime=1.0)
        fcfs.submit(running)
        submit_at(sim, fcfs, big, 1.0)
        submit_at(sim, fcfs, small, 2.0)
        sim.run()
        # small fits at t=2 (2 nodes free) but must wait behind big.
        assert big.start_time == 100.0
        assert small.start_time >= big.start_time

    def test_oversized_request_rejected(self, fcfs):
        with pytest.raises(SchedulerError):
            fcfs.submit(make_request(nodes=9))

    def test_resubmission_rejected(self, sim, fcfs):
        r = make_request()
        fcfs.submit(r)
        with pytest.raises(SchedulerError):
            fcfs.submit(r)


class TestCancellation:
    def test_cancel_pending(self, sim, fcfs):
        blocker = make_request(nodes=8, runtime=50.0)
        waiting = make_request(nodes=8, runtime=10.0)
        fcfs.submit(blocker)
        fcfs.submit(waiting)
        fcfs.cancel(waiting)
        sim.run()
        assert waiting.state is RequestState.CANCELLED
        assert waiting.cancelled_at == 0.0
        assert fcfs.stats.cancelled == 1

    def test_cancel_unblocks_successor(self, sim, fcfs):
        blocker = make_request(nodes=8, runtime=50.0)
        big = make_request(nodes=8, runtime=10.0)
        small = make_request(nodes=1, runtime=1.0)
        fcfs.submit(blocker)
        fcfs.submit(big)
        fcfs.submit(small)
        sim.at(10.0, lambda: fcfs.cancel(big))
        sim.run()
        assert small.start_time == 50.0  # right after blocker, big gone

    def test_cancel_running_rejected(self, sim, fcfs):
        r = make_request(nodes=1, runtime=100.0)
        fcfs.submit(r)
        sim.run(until=1.0)
        assert r.state is RequestState.RUNNING
        with pytest.raises(SchedulerError):
            fcfs.cancel(r)

    def test_cancel_foreign_request_rejected(self, sim, fcfs):
        other = FCFSScheduler(sim, Cluster(1, 8))
        r = make_request()
        other.submit(r)
        with pytest.raises(SchedulerError):
            fcfs.cancel(r)


class TestAccounting:
    def test_stats_counts(self, sim, fcfs):
        rs = [make_request(nodes=2, runtime=5.0) for _ in range(4)]
        for r in rs:
            fcfs.submit(r)
        fcfs.cancel(rs[3])
        sim.run()
        assert fcfs.stats.submitted == 4
        assert fcfs.stats.cancelled == 1
        assert fcfs.stats.started == 3
        assert fcfs.stats.completed == 3

    def test_nodes_released_after_completion(self, sim, fcfs, cluster):
        fcfs.submit(make_request(nodes=8, runtime=5.0))
        sim.run()
        assert cluster.free_nodes == 8

    def test_max_queue_length_tracked(self, sim, fcfs):
        # All six submissions land before the coalesced scheduling pass
        # runs, so the queue peaks at 6 (including the job about to start).
        fcfs.submit(make_request(nodes=8, runtime=10.0))
        for _ in range(5):
            fcfs.submit(make_request(nodes=8, runtime=1.0))
        sim.run()
        assert fcfs.stats.max_queue_length == 6

    def test_invariants_hold_during_run(self, sim, fcfs):
        for i in range(20):
            submit_at(
                sim, fcfs,
                make_request(nodes=(i % 8) + 1, runtime=3.0 + i), float(i),
            )
        while sim.step():
            fcfs.check_invariants()
