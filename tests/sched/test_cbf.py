"""Unit tests for Conservative Backfilling."""

import pytest

from repro.cluster.cluster import Cluster
from repro.sched import CBFScheduler
from repro.sched.job import RequestState
from repro.sim.engine import Simulator

from ..conftest import make_request, submit_at


@pytest.fixture
def cbf(sim, cluster):
    return CBFScheduler(sim, cluster)


class TestReservations:
    def test_every_submission_gets_a_reservation(self, sim, cbf):
        a = make_request(nodes=8, runtime=10.0)
        b = make_request(nodes=8, runtime=10.0)
        cbf.submit(a)
        cbf.submit(b)
        assert a.reserved_start == 0.0
        assert b.reserved_start == 10.0
        assert b.predicted_start_at_submit == 10.0

    def test_prediction_fixed_at_submit(self, sim, cbf):
        blocker = make_request(nodes=8, runtime=10.0, requested=50.0)
        waiting = make_request(nodes=8, runtime=5.0)
        cbf.submit(blocker)
        cbf.submit(waiting)
        assert waiting.predicted_start_at_submit == 50.0  # uses requested
        sim.run()
        # Early completion started it way before the prediction.
        assert waiting.start_time == 10.0
        assert waiting.predicted_start_at_submit == 50.0

    def test_start_never_after_reservation(self, sim, cbf):
        """The CBF guarantee: the reservation is a latest start time."""
        rs = [
            make_request(nodes=(i * 5 % 8) + 1, runtime=3.0 + (i % 6))
            for i in range(40)
        ]
        promised = {}
        for i, r in enumerate(rs):
            submit_at(sim, cbf, r, float(i) / 3.0)
        sim.run()
        for r in rs:
            assert r.start_time <= r.predicted_start_at_submit + 1e-9, (
                f"request {r.request_id} started {r.start_time} after its "
                f"guarantee {r.predicted_start_at_submit}"
            )

    def test_backfill_against_reservations(self, sim, cbf):
        """A short job may start now only if no reservation is delayed."""
        running = make_request(nodes=6, runtime=100.0)
        head = make_request(nodes=8, runtime=10.0)
        ok = make_request(nodes=2, runtime=50.0)    # fits before head's res
        cbf.submit(running)
        submit_at(sim, cbf, head, 1.0)
        submit_at(sim, cbf, ok, 2.0)
        sim.run()
        assert ok.start_time == 2.0
        assert head.start_time == 100.0

    def test_backfill_denied_when_reservation_would_be_delayed(self, sim, cbf):
        running = make_request(nodes=6, runtime=100.0)
        head = make_request(nodes=8, runtime=10.0)
        bad = make_request(nodes=2, runtime=200.0)  # overlaps head's window
        cbf.submit(running)
        submit_at(sim, cbf, head, 1.0)
        submit_at(sim, cbf, bad, 2.0)
        sim.run()
        assert head.start_time == 100.0
        assert bad.start_time >= 110.0

    def test_new_arrival_reserves_into_hole(self, sim, cbf):
        """CBF gives later arrivals earlier slots when a hole exists."""
        running = make_request(nodes=6, runtime=100.0)
        head = make_request(nodes=8, runtime=10.0)
        cbf.submit(running)
        submit_at(sim, cbf, head, 1.0)
        late = make_request(nodes=2, runtime=20.0)
        submit_at(sim, cbf, late, 5.0)
        sim.run()
        assert late.start_time == 5.0  # reserved the [5, 25) x 2-node hole


class TestChurn:
    def test_cancellation_frees_profile(self, sim, cbf):
        a = make_request(nodes=8, runtime=10.0)
        b = make_request(nodes=8, runtime=10.0)
        c = make_request(nodes=8, runtime=10.0)
        cbf.submit(a)
        cbf.submit(b)
        cbf.submit(c)
        assert c.reserved_start == 20.0
        sim.at(1.0, lambda: cbf.cancel(b))
        sim.run()
        assert c.start_time == 10.0  # moved up into b's freed slot

    def test_early_finish_lets_backfill_start(self, sim, cbf):
        early = make_request(nodes=8, runtime=5.0, requested=100.0)
        nxt = make_request(nodes=8, runtime=5.0)
        cbf.submit(early)
        cbf.submit(nxt)
        assert nxt.reserved_start == 100.0
        sim.run()
        assert nxt.start_time == 5.0

    def test_reservation_due_without_coincident_event(self, sim, cbf):
        """A reservation time may stop matching any finish event once the
        schedule runs early; the wake-up timer must still start the job."""
        a = make_request(nodes=8, runtime=2.0, requested=10.0)
        b = make_request(nodes=4, runtime=20.0, requested=20.0)
        c = make_request(nodes=8, runtime=5.0, requested=5.0)
        cbf.submit(a)      # holds everything until t=10 (requested)
        cbf.submit(b)      # reserved at t=10
        cbf.submit(c)      # reserved at t=30
        sim.run()
        # a ends at 2, b backfills/starts at 2, c needs 8 nodes: must wait
        # until b ends at 22 — no other event occurs then except b's finish;
        # but b's finish IS an event. Force the timer case instead:
        assert b.start_time == 2.0
        assert c.start_time == 22.0

    def test_timer_fires_for_orphan_reservation(self, sim):
        """Construct a case where a reservation's start time coincides with
        no submit/finish/cancel event at all."""
        sim2 = Simulator()
        cbf2 = CBFScheduler(sim2, Cluster(0, 8))
        # Long runner holds 6 nodes until t=100 (exact estimate).
        runner = make_request(nodes=6, runtime=100.0)
        cbf2.submit(runner)
        # Short job uses 2 nodes [0, 4).
        shorty = make_request(nodes=2, runtime=4.0)
        cbf2.submit(shorty)
        # This job needs 4 nodes for 2s: profile hole only at t=4 (after
        # shorty): reserved_start = 4.0, but shorty's finish event at 4.0
        # would trigger the pass anyway. Cancel shorty at t=1: now nothing
        # happens at t=4... and the job can start at t=1 via the pass.
        # Instead reserve behind a *cancelled* blocker:
        filler = make_request(nodes=2, runtime=50.0)   # reserved [4, 54)
        cbf2.submit(filler)
        assert filler.reserved_start == 4.0
        sim2.run()
        assert filler.start_time <= 4.0

    def test_compress_interval_zero_recomputes(self, sim):
        sim2 = Simulator()
        cbf2 = CBFScheduler(sim2, Cluster(0, 8), compress_interval=0.0)
        a = make_request(nodes=8, runtime=10.0)
        b = make_request(nodes=8, runtime=10.0)
        c = make_request(nodes=8, runtime=10.0)
        for r in (a, b, c):
            cbf2.submit(r)
        sim2.at(1.0, lambda: cbf2.cancel(b))
        sim2.run()
        assert cbf2.compressions >= 1
        assert c.start_time == 10.0

    def test_compress_preserves_guarantees(self, sim):
        sim2 = Simulator()
        cbf2 = CBFScheduler(sim2, Cluster(0, 8), compress_interval=0.0)
        rs = [
            make_request(nodes=(i * 3 % 8) + 1, runtime=4.0 + (i % 5),
                         requested=8.0 + (i % 5))
            for i in range(30)
        ]
        for i, r in enumerate(rs):
            submit_at(sim2, cbf2, r, float(i) / 2.0)
        sim2.run()
        for r in rs:
            assert r.start_time <= r.predicted_start_at_submit + 1e-9


class TestTimerRearm:
    def test_timer_rearms_after_firing(self):
        """Regression: a fired (not cancelled) timer must not suppress
        arming the next one.

        Fired events are never marked ``cancelled``, so a stale handle
        used to satisfy the "a wake-up is already pending" guard forever
        after the first firing — due reservations then only started when
        an unrelated event happened to trigger a pass.
        """
        sim = Simulator()
        cbf = CBFScheduler(sim, Cluster(0, 2))
        a = make_request(nodes=2, runtime=2.0)
        cbf.submit(a)                     # holds [0, 2)
        b = make_request(nodes=1, runtime=1.0)
        cbf.submit(b)                     # reserved [2, 3)
        sim.run(until=0.0)                # pass starts a, arms the timer
        first_timer = cbf._timer
        assert first_timer is not None and first_timer.time == 2.0
        sim.run(until=2.0)                # timer fires; b starts on time
        assert b.start_time == 2.0
        c = make_request(nodes=2, runtime=4.0)
        cbf.submit(c)                     # behind b's hold: reserved [3, 7)
        assert c.reserved_start == 3.0
        assert cbf._timer is not None and cbf._timer is not first_timer
        assert not cbf._timer.cancelled
        assert cbf._timer.time == 3.0
        sim.run()
        assert c.start_time == 3.0

    def test_reservation_starts_without_coincident_event(self):
        """A due reservation must start even when no submit/finish/cancel
        event lands at its reserved time (the timer's whole purpose)."""
        sim = Simulator()
        cbf = CBFScheduler(sim, Cluster(0, 2))
        # Burn the first timer: a runs [0, 2), b reserved [2, 3).
        a = make_request(nodes=2, runtime=2.0)
        b = make_request(nodes=1, runtime=1.0)
        cbf.submit(a)
        cbf.submit(b)
        sim.run(until=2.0)
        assert b.start_time == 2.0
        # c holds one node with a long request but finishes early; d
        # needs both nodes and reserves behind c's *requested* end — a
        # time where nothing else is scheduled to happen.
        c = make_request(nodes=1, runtime=3.0, requested=20.0)
        cbf.submit(c)                     # starts now, hold [2, 22) planned
        d = make_request(nodes=2, runtime=1.0)
        cbf.submit(d)                     # reserved [22, 23)
        assert d.reserved_start == 22.0
        sim.run()
        # c's early finish at t=5 lets d backfill long before t=22; with
        # the stale-timer bug d still starts (the finish event triggers
        # the pass), so also pin the full completion of the run.
        assert d.state is RequestState.COMPLETED
        assert d.start_time <= 22.0


class TestCompressionGuarantee:
    def test_compress_never_delays_past_prediction(self):
        """Regression: the from-scratch greedy rebuild could move a
        reservation *later* than its at-submit guarantee.

        Setup (capacity 3): H1 holds 1 node [0, 10) but finishes at t=1;
        H2 holds 1 node [0, 4).  E (3 nodes) reserves [10, 20); M
        (2 nodes) reserves the earlier gap [4, 8) — its guarantee is
        t=4.  When H1's early finish triggers eager compression, a
        greedy rebuild re-places E first at t=4, consuming M's gap and
        pushing M to t=14 — ten seconds past its guarantee.  Compression
        that re-places each request with all others held fixed moves E
        to t=8 and M to t=1 instead.
        """
        sim = Simulator()
        cbf = CBFScheduler(sim, Cluster(0, 3), compress_interval=0.0)
        h1 = make_request(nodes=1, runtime=1.0, requested=10.0)
        h2 = make_request(nodes=1, runtime=4.0)
        cbf.submit(h1)                    # starts, planned hold [0, 10)
        cbf.submit(h2)                    # starts, hold [0, 4)
        e = make_request(nodes=3, runtime=10.0)
        cbf.submit(e)                     # reserved [10, 20)
        m = make_request(nodes=2, runtime=4.0)
        cbf.submit(m)                     # reserved [4, 8)
        assert e.reserved_start == 10.0
        assert m.reserved_start == 4.0
        assert m.predicted_start_at_submit == 4.0
        sim.run()
        assert cbf.compressions >= 1
        for r in (e, m):
            assert r.start_time <= r.predicted_start_at_submit + 1e-9, (
                f"request {r.request_id} started {r.start_time} after its "
                f"guarantee {r.predicted_start_at_submit}"
            )

    def test_compress_only_moves_reservations_earlier(self):
        """Randomised: across eager compression, no pending reservation
        ever moves later than the value it had before the pass."""
        sim = Simulator()
        cbf = CBFScheduler(sim, Cluster(0, 8), compress_interval=0.0)
        rs = [
            make_request(
                nodes=(i * 3 % 8) + 1,
                runtime=2.0 + (i * 7 % 5),
                requested=6.0 + (i * 11 % 9),
            )
            for i in range(40)
        ]
        for i, r in enumerate(rs):
            submit_at(sim, cbf, r, float(i) / 3.0)
        while sim.step():
            for r in rs:
                if r.is_pending and r.reserved_start is not None:
                    assert (
                        r.reserved_start
                        <= r.predicted_start_at_submit + 1e-9
                    )
        assert cbf.stats.completed == 40


class TestOutageRecovery:
    def test_overdue_reservation_restored_consistently(self):
        """Regression: a reservation overdue after an outage used to
        start with its hold window misaligned from the profile window
        (profile said nodes free while they were held)."""
        sim = Simulator()
        cbf = CBFScheduler(sim, Cluster(0, 2))
        a = make_request(nodes=2, runtime=5.0)
        cbf.submit(a)                     # holds [0, 5)
        w = make_request(nodes=2, runtime=3.0)
        cbf.submit(w)                     # reserved [5, 8)
        sim.at(3.0, lambda: cbf.go_down())
        sim.at(9.0, cbf.come_up)
        free_mid_run: list[int] = []
        sim.at(9.5, lambda: free_mid_run.append(cbf.profile.free_at(9.5)))
        sim.run()
        # The daemon recovered at t=9 with w's reservation 4s overdue;
        # it must start immediately with a re-aligned window.
        assert w.start_time == 9.0
        assert w.end_time == 12.0
        # While w runs, the profile must account for its actual hold
        # [9, 12) — the drift bug reported 2 nodes free here.
        assert free_mid_run == [0]
        cbf.check_invariants()


class TestAccounting:
    def test_all_jobs_complete_and_invariants(self, sim, cbf):
        rs = [
            make_request(nodes=(i * 7 % 8) + 1, runtime=2.0 + (i % 9))
            for i in range(50)
        ]
        for i, r in enumerate(rs):
            submit_at(sim, cbf, r, float(i) / 4.0)
        while sim.step():
            cbf.check_invariants()
        assert cbf.stats.completed == 50

    def test_trim_keeps_profile_bounded(self, sim, cbf):
        # More passes than the trim interval.
        for i in range(600):
            submit_at(sim, cbf, make_request(nodes=1, runtime=0.5), i * 0.6)
        sim.run()
        assert len(cbf._profile) < 200
