"""Unit tests for EASY aggressive backfilling."""

import pytest

from repro.sched import EASYScheduler
from repro.sched.job import RequestState
from repro.sim.engine import Simulator

from ..conftest import make_request, submit_at


@pytest.fixture
def easy(sim, cluster):
    return EASYScheduler(sim, cluster)


class TestBackfilling:
    def test_short_job_backfills_past_blocked_head(self, sim, easy):
        """The defining EASY property (contrast with the FCFS test)."""
        running = make_request(nodes=6, runtime=100.0)
        big = make_request(nodes=8, runtime=10.0)     # blocked head
        small = make_request(nodes=1, runtime=5.0)    # finishes before shadow
        easy.submit(running)
        submit_at(sim, easy, big, 1.0)
        submit_at(sim, easy, small, 2.0)
        sim.run()
        assert small.start_time == 2.0
        assert big.start_time == 100.0

    def test_backfill_never_delays_head(self, sim, easy):
        """A backfill candidate that would push the head's shadow is denied."""
        running = make_request(nodes=6, runtime=100.0)
        head = make_request(nodes=8, runtime=10.0)
        # 2 nodes are free; this job fits now but runs past the shadow
        # (t=100) and its 2 nodes are not 'extra' (8 - 8 = 0 extra).
        long_small = make_request(nodes=1, runtime=200.0)
        easy.submit(running)
        submit_at(sim, easy, head, 1.0)
        submit_at(sim, easy, long_small, 2.0)
        sim.run()
        assert head.start_time == 100.0  # not delayed
        assert long_small.start_time == 110.0  # after the head

    def test_backfill_on_extra_nodes_allowed(self, sim, easy):
        """A long job may backfill if the head doesn't need its nodes."""
        running = make_request(nodes=4, runtime=100.0)
        head = make_request(nodes=8, runtime=10.0)
        # 4 free; head needs all 8 at t=100; extra = (4+4) - 8 = 0...
        # Use a smaller head so extra nodes exist: head needs 6.
        sim2 = Simulator()
        from repro.cluster.cluster import Cluster
        c2 = Cluster(0, 8)
        e2 = EASYScheduler(sim2, c2)
        run2 = make_request(nodes=4, runtime=100.0)
        head2 = make_request(nodes=6, runtime=10.0)
        long2 = make_request(nodes=2, runtime=500.0)
        e2.submit(run2)
        submit_at(sim2, e2, head2, 1.0)
        submit_at(sim2, e2, long2, 2.0)
        sim2.run()
        # extra = (4 free + 4 released at shadow) - 6 = 2 >= long2.nodes
        assert long2.start_time == 2.0
        assert head2.start_time == 100.0

    def test_multiple_backfills_in_one_pass(self, sim, easy):
        running = make_request(nodes=6, runtime=100.0)
        head = make_request(nodes=8, runtime=10.0)
        s1 = make_request(nodes=1, runtime=5.0)
        s2 = make_request(nodes=1, runtime=5.0)
        easy.submit(running)
        submit_at(sim, easy, head, 1.0)
        submit_at(sim, easy, s1, 2.0)
        submit_at(sim, easy, s2, 2.0)
        sim.run()
        assert s1.start_time == 2.0
        assert s2.start_time == 2.0

    def test_queue_order_preserved_without_backfill_opportunity(self, sim, easy):
        rs = [make_request(nodes=8, runtime=5.0) for _ in range(3)]
        for r in rs:
            easy.submit(r)
        sim.run()
        assert [r.start_time for r in rs] == [0.0, 5.0, 10.0]


class TestChurnReactions:
    def test_cancellation_triggers_backfill(self, sim, easy):
        running = make_request(nodes=8, runtime=50.0)
        head = make_request(nodes=8, runtime=10.0)
        small = make_request(nodes=8, runtime=1.0)
        easy.submit(running)
        easy.submit(head)
        easy.submit(small)
        sim.at(5.0, lambda: easy.cancel(head))
        sim.run()
        assert small.start_time == 50.0

    def test_early_completion_triggers_backfill(self, sim, easy):
        """A job finishing before its requested time frees backfill room."""
        early = make_request(nodes=8, runtime=10.0, requested=100.0)
        waiting = make_request(nodes=8, runtime=5.0)
        easy.submit(early)
        easy.submit(waiting)
        sim.run()
        assert waiting.start_time == 10.0  # at actual, not requested, end

    def test_overestimates_shrink_backfill_windows(self, sim):
        """With a padded running job, the shadow moves later and admits
        longer backfills."""
        from repro.cluster.cluster import Cluster

        sim2 = Simulator()
        e = EASYScheduler(sim2, Cluster(0, 8))
        running = make_request(nodes=6, runtime=10.0, requested=100.0)
        head = make_request(nodes=8, runtime=10.0)
        medium = make_request(nodes=2, runtime=50.0)  # <= shadow 100
        e.submit(running)
        submit_at(sim2, e, head, 1.0)
        submit_at(sim2, e, medium, 2.0)
        sim2.run()
        assert medium.start_time == 2.0  # admitted against the padded shadow
        # The head starts when the nodes actually free (t=10) — but only
        # if medium's 2 nodes leave enough; 8 - 2 = 6 < 8, so head waits
        # for medium to end at t=52.
        assert head.start_time == 52.0


class TestStats:
    def test_all_jobs_complete(self, sim, easy):
        for i in range(30):
            submit_at(
                sim, easy,
                make_request(nodes=(i % 8) + 1, runtime=5.0 + (i % 7)),
                float(i),
            )
        sim.run()
        assert easy.stats.completed == 30
        easy.check_invariants()

    def test_invariants_under_stepwise_execution(self, sim, easy):
        for i in range(25):
            submit_at(
                sim, easy,
                make_request(nodes=(i * 3 % 8) + 1, runtime=2.0 + (i % 5)),
                float(i) / 2.0,
            )
        while sim.step():
            easy.check_invariants()
