"""Unit tests for Request state and derived quantities."""

import pytest

from repro.sched.job import Request, RequestState

from ..conftest import make_request


class TestValidation:
    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            Request(nodes=0, runtime=1.0, requested_time=1.0)

    def test_nonpositive_runtime_rejected(self):
        with pytest.raises(ValueError):
            Request(nodes=1, runtime=0.0, requested_time=1.0)

    def test_requested_below_runtime_rejected(self):
        with pytest.raises(ValueError):
            Request(nodes=1, runtime=10.0, requested_time=5.0)

    def test_requested_equal_runtime_allowed(self):
        r = Request(nodes=1, runtime=10.0, requested_time=10.0)
        assert r.requested_time == 10.0


class TestLifecycle:
    def test_initial_state_created(self):
        assert make_request().state is RequestState.CREATED

    def test_unique_ids(self):
        a, b = make_request(), make_request()
        assert a.request_id != b.request_id

    def test_is_pending_and_active(self):
        r = make_request()
        assert not r.is_pending
        r.state = RequestState.PENDING
        assert r.is_pending and r.is_active
        r.state = RequestState.RUNNING
        assert not r.is_pending and r.is_active
        r.state = RequestState.COMPLETED
        assert not r.is_active


class TestDerivedQuantities:
    def _completed(self) -> Request:
        r = make_request(runtime=10.0, requested=20.0)
        r.submitted_at = 100.0
        r.start_time = 130.0
        r.end_time = 140.0
        r.state = RequestState.COMPLETED
        return r

    def test_wait_time(self):
        assert self._completed().wait_time == 30.0

    def test_turnaround(self):
        assert self._completed().turnaround == 40.0

    def test_stretch(self):
        assert self._completed().stretch == 4.0

    def test_expected_end_uses_requested_time(self):
        r = self._completed()
        assert r.expected_end == 150.0  # 130 + requested 20

    def test_wait_before_start_raises(self):
        r = make_request()
        r.submitted_at = 0.0
        with pytest.raises(ValueError):
            _ = r.wait_time

    def test_turnaround_before_end_raises(self):
        r = make_request()
        r.submitted_at = 0.0
        r.start_time = 1.0
        with pytest.raises(ValueError):
            _ = r.turnaround

    def test_expected_end_before_start_raises(self):
        with pytest.raises(ValueError):
            _ = make_request().expected_end


class TestCopySpec:
    def test_copy_preserves_workload_fields(self):
        r = make_request(nodes=4, runtime=7.0, requested=9.0, submit_time=3.0)
        c = r.copy_spec()
        assert (c.nodes, c.runtime, c.requested_time, c.submit_time) == (
            4, 7.0, 9.0, 3.0
        )

    def test_copy_gets_fresh_identity_and_state(self):
        r = make_request()
        r.state = RequestState.PENDING
        c = r.copy_spec()
        assert c.request_id != r.request_id
        assert c.state is RequestState.CREATED

    def test_copy_overrides(self):
        r = make_request(requested=10.0)
        c = r.copy_spec(requested_time=15.0)
        assert c.requested_time == 15.0
