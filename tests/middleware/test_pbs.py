"""Tests for the PBS daemon cost model."""

import numpy as np
import pytest

from repro.middleware.pbs import (
    PAPER_FIGURE5_ANCHORS,
    PBSDaemonModel,
    fit_throughput_curve,
    paper_calibrated_model,
)


class TestModelShape:
    def test_anchor_points(self):
        m = paper_calibrated_model()
        assert m.throughput(0) == pytest.approx(11.0, rel=0.05)
        assert m.throughput(20000) == pytest.approx(5.0, rel=0.08)

    def test_monotone_decreasing(self):
        m = paper_calibrated_model()
        qs = np.linspace(0, 30000, 50)
        ts = [m.throughput(q) for q in qs]
        assert all(a >= b for a, b in zip(ts, ts[1:]))

    def test_sharp_then_slow_decay(self):
        """Figure 5's 'somewhat exponential' shape: the first 5k queue
        entries cost more throughput than the last 10k."""
        m = paper_calibrated_model()
        drop_early = m.throughput(0) - m.throughput(5000)
        drop_late = m.throughput(10000) - m.throughput(20000)
        assert drop_early > drop_late

    def test_op_service_time_inverse(self):
        m = PBSDaemonModel(t_0=10.0, t_inf=5.0, q_scale=1000.0)
        assert m.op_service_time(0) == pytest.approx(1 / 20.0)

    def test_negative_queue_rejected(self):
        with pytest.raises(ValueError):
            paper_calibrated_model().throughput(-1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PBSDaemonModel(t_0=5.0, t_inf=10.0, q_scale=100.0)
        with pytest.raises(ValueError):
            PBSDaemonModel(t_0=5.0, t_inf=1.0, q_scale=0.0)


class TestNoise:
    def test_noise_centered_on_base(self):
        m = PBSDaemonModel(noise_cv=0.05)
        rng = np.random.default_rng(0)
        samples = [m.noisy_op_service_time(1000, rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(m.op_service_time(1000),
                                                 rel=0.02)

    def test_zero_noise_deterministic(self):
        m = PBSDaemonModel(noise_cv=0.0)
        rng = np.random.default_rng(0)
        assert m.noisy_op_service_time(0, rng) == m.op_service_time(0)


class TestOOM:
    def test_no_oom_below_threshold(self):
        m = PBSDaemonModel(oom_queue_size=15000)
        assert m.oom_probability(10000, 12.0) == 0.0

    def test_oom_grows_with_queue_and_time(self):
        m = PBSDaemonModel(oom_queue_size=15000)
        assert m.oom_probability(20000, 12.0) > 0
        assert m.oom_probability(25000, 12.0) > m.oom_probability(20000, 12.0)
        assert m.oom_probability(20000, 24.0) > m.oom_probability(20000, 12.0)

    def test_oom_disabled(self):
        m = PBSDaemonModel(oom_queue_size=None)
        assert m.oom_probability(1e6, 100.0) == 0.0


class TestFitting:
    def test_fit_recovers_known_model(self):
        true = PBSDaemonModel(t_0=11.0, t_inf=4.6, q_scale=6000.0)
        qs = np.linspace(0, 20000, 12)
        ts = [true.throughput(q) for q in qs]
        fitted = fit_throughput_curve(qs, ts)
        assert fitted.t_0 == pytest.approx(11.0, rel=0.02)
        assert fitted.t_inf == pytest.approx(4.6, rel=0.05)
        assert fitted.q_scale == pytest.approx(6000.0, rel=0.1)

    def test_fit_paper_anchors_consistent(self):
        q, t = zip(*PAPER_FIGURE5_ANCHORS)
        m = fit_throughput_curve(q, t)
        for qi, ti in PAPER_FIGURE5_ANCHORS:
            assert m.throughput(qi) == pytest.approx(ti, rel=0.1)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_throughput_curve([0, 1], [10, 9])
