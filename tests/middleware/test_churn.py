"""Tests for the churn saturation experiment."""

import numpy as np
import pytest

from repro.middleware.churn import (
    average_curve,
    churn_curve,
    measure_real_scheduler_throughput,
    run_churn_experiment,
)
from repro.middleware.pbs import PBSDaemonModel


@pytest.fixture
def model():
    return PBSDaemonModel(t_0=11.0, t_inf=4.6, q_scale=6000.0,
                          noise_cv=0.0, oom_queue_size=None)


class TestChurnExperiment:
    def test_rate_matches_model(self, model):
        s = run_churn_experiment(model, 0, duration_s=300.0,
                                 sample_noise=False)
        assert s.submissions_per_sec == pytest.approx(11.0, rel=0.02)
        assert s.cancellations_per_sec == s.submissions_per_sec

    def test_rate_decays_with_queue(self, model):
        rates = [
            run_churn_experiment(model, q, duration_s=200.0,
                                 sample_noise=False).submissions_per_sec
            for q in (0, 5000, 20000)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_ops_per_sec_is_sub_plus_cancel(self, model):
        s = run_churn_experiment(model, 0, duration_s=100.0)
        assert s.ops_per_sec == pytest.approx(2 * s.submissions_per_sec)

    def test_oom_truncation(self):
        m = PBSDaemonModel(oom_queue_size=1000)
        rng = np.random.default_rng(1)
        truncated = [
            run_churn_experiment(m, 20000, duration_s=12 * 3600.0, rng=rng)
            .truncated_by_oom
            for _ in range(30)
        ]
        assert any(truncated)

    def test_invalid_args(self, model):
        with pytest.raises(ValueError):
            run_churn_experiment(model, -1)
        with pytest.raises(ValueError):
            run_churn_experiment(model, 0, duration_s=0.0)


class TestCurves:
    def test_curve_shape(self, model):
        curves = churn_curve(model, queue_sizes=(0, 10000, 20000),
                             duration_s=100.0, n_repetitions=2)
        assert len(curves) == 2
        assert len(curves[0]) == 3
        avg = average_curve(curves)
        assert [s.queue_size for s in avg] == [0, 10000, 20000]
        assert avg[0].submissions_per_sec > avg[-1].submissions_per_sec

    def test_average_empty_rejected(self):
        with pytest.raises(ValueError):
            average_curve([])


class TestRealSchedulerMeasurement:
    @pytest.mark.parametrize("algorithm", ["fcfs", "easy", "cbf"])
    def test_positive_throughput(self, algorithm):
        rate = measure_real_scheduler_throughput(
            algorithm, queue_size=100, n_ops=100
        )
        assert rate > 0
