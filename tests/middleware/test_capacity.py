"""Tests for the Section 4 capacity analysis — the paper's exact numbers."""

import pytest

from repro.middleware.capacity import (
    capacity_report,
    max_redundancy,
    per_cluster_cancellation_rate,
    per_cluster_submission_rate,
)
from repro.middleware.gram import MiddlewareModel


class TestRates:
    def test_submission_rate(self):
        assert per_cluster_submission_rate(3, 5.0) == pytest.approx(0.6)

    def test_cancellation_rate_one_less(self):
        assert per_cluster_cancellation_rate(3, 5.0) == pytest.approx(0.4)
        assert per_cluster_cancellation_rate(1, 5.0) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            per_cluster_submission_rate(0, 5.0)
        with pytest.raises(ValueError):
            per_cluster_submission_rate(1, 0.0)


class TestMaxRedundancy:
    def test_paper_scheduler_bound(self):
        """6 submissions/s at iat 5 s -> r < 30 (the paper's number)."""
        assert max_redundancy(6.0, 5.0) == 30

    def test_paper_middleware_bound(self):
        """0.5 submissions/s at iat 5 s -> r < 3."""
        assert max_redundancy(0.5, 5.0) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            max_redundancy(0.0, 5.0)


class TestReport:
    def test_paper_numbers_fall_out(self):
        rep = capacity_report()
        # scheduler at 10k-deep queue: ~6 subs/s -> r tolerable up to 29
        assert 25 <= rep.scheduler_max_redundancy <= 32
        # middleware: just under 0.5 subs/s -> tolerates r = 2 ("r < 3")
        assert rep.middleware_max_redundancy == 2
        assert rep.bottleneck == "middleware"

    def test_faster_middleware_shifts_bottleneck(self):
        fast_mw = MiddlewareModel(tx_per_sec=100.0, name="future GRAM")
        rep = capacity_report(middleware=fast_mw)
        assert rep.bottleneck == "scheduler"

    def test_lines_render(self):
        lines = capacity_report().lines()
        assert any("bottleneck" in l for l in lines)
        assert any("r < 30" in l for l in lines)
        assert any("r < 3" in l for l in lines)
