"""Tests for the middleware and network models."""

import math

import pytest

from repro.middleware.gram import (
    MiddlewareModel,
    NetworkModel,
    gsoap_model,
    gt4_wsgram_model,
)


class TestMiddlewareModel:
    def test_gt4_rate_just_under_one_per_second(self):
        m = gt4_wsgram_model()
        assert 0.9 < m.tx_per_sec < 1.0

    def test_max_submission_rate_halves(self):
        m = MiddlewareModel(tx_per_sec=1.0)
        assert m.max_submission_rate() == 0.5

    def test_utilization_linear(self):
        m = MiddlewareModel(tx_per_sec=2.0)
        assert m.utilization(1.0) == 0.5
        assert m.utilization(2.0) == 1.0

    def test_saturation(self):
        m = MiddlewareModel(tx_per_sec=2.0)
        assert not m.is_saturated(1.9)
        assert m.is_saturated(2.0)

    def test_mean_wait_md1(self):
        m = MiddlewareModel(tx_per_sec=1.0)
        # rho = 0.5: W = 0.5 * 1 / (2 * 0.5) = 0.5
        assert m.mean_wait(0.5) == pytest.approx(0.5)

    def test_mean_wait_saturated_inf(self):
        m = MiddlewareModel(tx_per_sec=1.0)
        assert math.isinf(m.mean_wait(1.0))

    def test_mean_wait_grows_with_load(self):
        m = MiddlewareModel(tx_per_sec=1.0)
        assert m.mean_wait(0.9) > m.mean_wait(0.5) > m.mean_wait(0.1)

    def test_gsoap_is_not_the_bottleneck(self):
        """The paper's point: SOAP marshalling sustains far more than the
        12 tx/s a loaded batch scheduler can consume."""
        assert gsoap_model().tx_per_sec > 12.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            MiddlewareModel(tx_per_sec=0.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            MiddlewareModel(tx_per_sec=1.0).utilization(-1.0)


class TestNetworkModel:
    def test_default_supports_tens_per_second(self):
        """Paper: 'most networks ... can easily support tens of such
        interactions per second'."""
        n = NetworkModel()
        assert n.max_tx_per_sec >= 50.0

    def test_supports(self):
        n = NetworkModel(bandwidth_bytes_per_sec=1e6, payload_bytes=1e5)
        assert n.supports(10.0)
        assert not n.supports(11.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_sec=0.0)
