"""Tests for the end-to-end submission pipeline (Section 4.2 by simulation)."""

import pytest

from repro.middleware.gram import MiddlewareModel
from repro.middleware.pbs import PBSDaemonModel
from repro.middleware.pipeline import (
    redundancy_sweep,
    simulate_submission_pipeline,
)


def quiet_daemon():
    return PBSDaemonModel(noise_cv=0.0, oom_queue_size=None)


class TestPipeline:
    def test_low_redundancy_keeps_up(self):
        res = simulate_submission_pipeline(
            1, iat=5.0, n_clusters=1, horizon=1200.0, daemon=quiet_daemon()
        )
        assert not res.middleware_saturated
        assert res.middleware_utilization < 0.5
        assert res.completion_fraction > 0.95

    def test_saturation_cliff_at_r3(self):
        """The paper's Section 4.2 headline: the middleware saturates
        around three redundant requests per job."""
        r2 = simulate_submission_pipeline(
            2, iat=5.0, n_clusters=1, horizon=1800.0, daemon=quiet_daemon()
        )
        r4 = simulate_submission_pipeline(
            4, iat=5.0, n_clusters=1, horizon=1800.0, daemon=quiet_daemon()
        )
        assert not r2.middleware_saturated
        assert r4.middleware_saturated
        assert r4.middleware_backlog > 10 * max(r2.middleware_backlog, 1)

    def test_scheduler_not_the_bottleneck(self):
        res = simulate_submission_pipeline(
            4, iat=5.0, n_clusters=1, horizon=1200.0, daemon=quiet_daemon()
        )
        # Whatever trickles through the saturated middleware is far below
        # the daemon's capacity.
        assert res.scheduler_utilization < 0.5

    def test_scheduler_saturates_beyond_r30_without_middleware(self):
        """With a fast middleware in front, the daemon's own r < 30 bound
        becomes the binding one."""
        fast_mw = MiddlewareModel(tx_per_sec=1e6, name="infinite")
        under = simulate_submission_pipeline(
            20, iat=5.0, n_clusters=1, horizon=1200.0,
            middleware=fast_mw, daemon=quiet_daemon(),
        )
        over = simulate_submission_pipeline(
            40, iat=5.0, n_clusters=1, horizon=1200.0,
            middleware=fast_mw, daemon=quiet_daemon(),
        )
        assert under.scheduler_backlog < over.scheduler_backlog
        assert over.scheduler_utilization > 0.95

    def test_latency_grows_with_load(self):
        lo = simulate_submission_pipeline(
            1, iat=5.0, n_clusters=1, horizon=1200.0, daemon=quiet_daemon()
        )
        hi = simulate_submission_pipeline(
            3, iat=5.0, n_clusters=1, horizon=1200.0, daemon=quiet_daemon()
        )
        assert hi.mean_end_to_end_latency > lo.mean_end_to_end_latency

    def test_deterministic_given_seed(self):
        a = simulate_submission_pipeline(2, horizon=600.0, seed=5)
        b = simulate_submission_pipeline(2, horizon=600.0, seed=5)
        assert a.middleware_backlog == b.middleware_backlog
        assert a.mean_end_to_end_latency == b.mean_end_to_end_latency

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            simulate_submission_pipeline(0)
        with pytest.raises(ValueError):
            simulate_submission_pipeline(1, horizon=0.0)


class TestSweep:
    def test_sweep_shows_monotone_backlog(self):
        results = redundancy_sweep(
            levels=(1, 3, 6), horizon=900.0, daemon=quiet_daemon()
        )
        backlogs = [r.middleware_backlog for r in results]
        assert backlogs[0] <= backlogs[1] <= backlogs[2]
        assert results[-1].middleware_saturated
