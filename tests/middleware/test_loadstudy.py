"""Tests for the simulation-backed Section 4.1 load studies."""

import pytest

from repro.middleware.loadstudy import (
    compare_max_queue_sizes,
    measure_queue_growth,
)


class TestQueueGrowth:
    def test_authentic_workload_grows_hundreds_per_hour(self):
        """Scaled-down check of the paper's ~700 jobs/hour claim: under
        the authentic peak-hour model almost nothing starts."""
        g = measure_queue_growth(nodes=128, duration=1800.0)
        assert g.arrivals_per_hour == pytest.approx(3600 / 5.01, rel=0.15)
        assert g.growth_per_hour > 0.5 * g.arrivals_per_hour
        assert g.start_fraction < 0.5

    def test_growth_roughly_independent_of_cluster_size(self):
        small = measure_queue_growth(nodes=32, duration=1800.0)
        large = measure_queue_growth(nodes=256, duration=1800.0)
        assert small.growth_per_hour == pytest.approx(
            large.growth_per_hour, rel=0.35
        )


class TestQueueSizeComparison:
    def test_steady_state_all_close_to_none(self):
        """In a steady-state regime the ALL scheme does not blow up queue
        sizes (the paper: < 2%; we assert a loose band around parity)."""
        cmp_ = compare_max_queue_sizes(
            n_clusters=4, duration=3600.0, n_replications=2
        )
        assert -0.6 < cmp_.relative_increase < 0.5
