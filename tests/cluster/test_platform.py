"""Unit tests for multi-site platforms."""

import numpy as np
import pytest

from repro.cluster.platform import (
    HETEROGENEOUS_NODE_CHOICES,
    Platform,
    heterogeneous_platform,
    homogeneous_platform,
)
from repro.sched import CBFScheduler, EASYScheduler, FCFSScheduler
from repro.sim.engine import Simulator


class TestConstruction:
    def test_one_scheduler_per_cluster(self, sim):
        p = Platform(sim, [16, 32], algorithm="easy")
        assert p.n_clusters == 2
        assert len(p.schedulers) == 2
        assert all(isinstance(s, EASYScheduler) for s in p.schedulers)
        assert p.schedulers[0].cluster is p.clusters[0]

    def test_node_counts_preserved_in_order(self, sim):
        p = Platform(sim, [16, 256, 64])
        assert p.node_counts == [16, 256, 64]

    def test_empty_platform_rejected(self, sim):
        with pytest.raises(ValueError):
            Platform(sim, [])

    @pytest.mark.parametrize(
        "algorithm,cls",
        [("fcfs", FCFSScheduler), ("easy", EASYScheduler), ("cbf", CBFScheduler)],
    )
    def test_algorithm_selection(self, sim, algorithm, cls):
        p = Platform(sim, [8], algorithm=algorithm)
        assert isinstance(p.schedulers[0], cls)

    def test_scheduler_kwargs_forwarded(self, sim):
        p = Platform(
            sim, [8], algorithm="cbf",
            scheduler_kwargs={"compress_interval": 60.0},
        )
        assert p.schedulers[0].compress_interval == 60.0


class TestBuilders:
    def test_homogeneous_sizes(self, sim):
        p = homogeneous_platform(sim, 5, nodes_per_cluster=128)
        assert p.node_counts == [128] * 5

    def test_homogeneous_rejects_zero_clusters(self, sim):
        with pytest.raises(ValueError):
            homogeneous_platform(sim, 0)

    def test_heterogeneous_sizes_from_choices(self, sim):
        rng = np.random.default_rng(0)
        p = heterogeneous_platform(sim, 20, rng)
        assert all(n in HETEROGENEOUS_NODE_CHOICES for n in p.node_counts)
        # With 20 draws we expect more than one distinct size.
        assert len(set(p.node_counts)) > 1

    def test_heterogeneous_deterministic_given_rng(self, sim):
        p1 = heterogeneous_platform(Simulator(), 8, np.random.default_rng(5))
        p2 = heterogeneous_platform(Simulator(), 8, np.random.default_rng(5))
        assert p1.node_counts == p2.node_counts


class TestEligibility:
    def test_eligible_clusters_filters_by_size(self, sim):
        p = Platform(sim, [16, 64, 256])
        assert p.eligible_clusters(32) == [1, 2]
        assert p.eligible_clusters(256) == [2]
        assert p.eligible_clusters(1) == [0, 1, 2]

    def test_no_cluster_large_enough(self, sim):
        p = Platform(sim, [16, 32])
        assert p.eligible_clusters(64) == []
