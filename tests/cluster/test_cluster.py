"""Unit tests for compute-node accounting."""

import pytest

from repro.cluster.cluster import AllocationError, Cluster


class TestConstruction:
    def test_defaults(self):
        c = Cluster(2, 64)
        assert c.name == "C2"
        assert c.total_nodes == 64
        assert c.free_nodes == 64

    def test_custom_name(self):
        assert Cluster(0, 4, name="head").name == "head"

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            Cluster(0, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Cluster(-1, 4)


class TestAllocation:
    def test_allocate_reduces_free(self):
        c = Cluster(0, 8)
        c.allocate(3)
        assert c.free_nodes == 5
        assert c.busy_nodes == 3

    def test_release_restores_free(self):
        c = Cluster(0, 8)
        c.allocate(3)
        c.release(3)
        assert c.free_nodes == 8

    def test_over_allocation_rejected(self):
        c = Cluster(0, 8)
        c.allocate(8)
        with pytest.raises(AllocationError):
            c.allocate(1)

    def test_over_release_rejected(self):
        c = Cluster(0, 8)
        c.allocate(2)
        with pytest.raises(AllocationError):
            c.release(3)

    def test_zero_allocation_rejected(self):
        with pytest.raises(AllocationError):
            Cluster(0, 8).allocate(0)

    def test_zero_release_rejected(self):
        with pytest.raises(AllocationError):
            Cluster(0, 8).release(0)

    def test_failed_allocation_leaves_state_unchanged(self):
        c = Cluster(0, 8)
        c.allocate(5)
        with pytest.raises(AllocationError):
            c.allocate(4)
        assert c.free_nodes == 3


class TestQueries:
    def test_can_fit(self):
        c = Cluster(0, 8)
        c.allocate(6)
        assert c.can_fit(2)
        assert not c.can_fit(3)
        assert not c.can_fit(0)

    def test_can_ever_fit(self):
        c = Cluster(0, 8)
        c.allocate(8)
        assert c.can_ever_fit(8)
        assert not c.can_ever_fit(9)
        assert not c.can_ever_fit(0)

    def test_utilization(self):
        c = Cluster(0, 8)
        assert c.utilization == 0.0
        c.allocate(4)
        assert c.utilization == 0.5
        c.allocate(4)
        assert c.utilization == 1.0
