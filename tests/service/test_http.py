"""Tests for the minimal HTTP layer under the sweep service."""

import http.client
import json

import pytest

from repro.service.http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    Router,
    run_server_in_thread,
)


def request(method="GET", target="/", headers=None, body=b""):
    return HttpRequest(method, target, headers or {}, body)


class TestHttpRequest:
    def test_path_and_query_split(self):
        req = request(target="/v1/jobs?limit=3&limit=5&q=a%20b")
        assert req.path == "/v1/jobs"
        assert req.query == {"limit": "5", "q": "a b"}

    def test_json_happy_path(self):
        req = request(body=b'{"a": 1}')
        assert req.json() == {"a": 1}

    def test_json_empty_body_is_empty_object(self):
        assert request().json() == {}

    @pytest.mark.parametrize("body", [b"not json", b"[1, 2]", b'"str"'])
    def test_json_rejects_non_objects(self, body):
        with pytest.raises(HttpError) as err:
            request(body=body).json()
        assert err.value.status == 400


class TestHttpResponse:
    def test_encode_carries_length_and_close(self):
        wire = HttpResponse.json({"ok": True}).encode()
        head, _, body = wire.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert b"Connection: close" in head
        assert json.loads(body) == {"ok": True}


class TestRouter:
    def make(self):
        router = Router()
        router.add("GET", "/v1/jobs", lambda req: HttpResponse.json("list"))
        router.add(
            "GET", "/v1/jobs/{job_id}",
            lambda req, job_id: HttpResponse.json(job_id),
        )
        router.add(
            "POST", "/v1/jobs/{job_id}/cancel",
            lambda req, job_id: HttpResponse.json(f"cancel {job_id}"),
        )
        return router

    def body(self, response):
        return json.loads(response.body)

    def test_literal_and_capture_dispatch(self):
        router = self.make()
        assert self.body(router.dispatch(request(target="/v1/jobs"))) == "list"
        assert self.body(
            router.dispatch(request(target="/v1/jobs/job-0001"))
        ) == "job-0001"
        assert self.body(router.dispatch(
            request("POST", "/v1/jobs/job-7/cancel")
        )) == "cancel job-7"

    def test_wrong_method_is_405(self):
        with pytest.raises(HttpError) as err:
            self.make().dispatch(request("DELETE", "/v1/jobs"))
        assert err.value.status == 405

    def test_unknown_path_is_404(self):
        with pytest.raises(HttpError) as err:
            self.make().dispatch(request(target="/v1/nope"))
        assert err.value.status == 404


class TestThreadedServer:
    """Real sockets: one loopback server per test, stdlib client."""

    def roundtrip(self, handler, method="GET", path="/", body=None):
        server = run_server_in_thread(handler)
        try:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10.0
            )
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            server.stop()

    def test_request_response_roundtrip(self):
        def echo(req):
            return HttpResponse.json({
                "method": req.method,
                "path": req.path,
                "body": req.json(),
            })

        status, body = self.roundtrip(
            echo, "POST", "/echo", json.dumps({"x": 1}).encode()
        )
        assert status == 200
        assert json.loads(body) == {
            "method": "POST", "path": "/echo", "body": {"x": 1},
        }

    def test_http_error_becomes_json_error(self):
        def refuse(req):
            raise HttpError(409, "not now")

        status, body = self.roundtrip(refuse)
        assert status == 409
        assert json.loads(body) == {"error": "not now"}

    def test_handler_crash_becomes_500(self):
        def crash(req):
            raise RuntimeError("kaboom")

        status, body = self.roundtrip(crash)
        assert status == 500
        assert "internal" in json.loads(body)["error"]
