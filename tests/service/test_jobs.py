"""Tests for the job model, canonical payloads and the job store."""

import dataclasses
import json

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import run_single
from repro.service.jobs import (
    JobSpec,
    JobStore,
    canonical_grid_json,
    canonical_grid_payload,
    decode_chunk_results,
    encode_chunk_results,
)


def tiny(**kw):
    defaults = dict(
        n_clusters=2, nodes_per_cluster=8, duration=120.0,
        offered_load=2.0, drain=True, seed=8,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


def spec(**kw):
    defaults = dict(configs=(tiny(),), n_replications=1)
    defaults.update(kw)
    return JobSpec(**defaults)


@pytest.fixture(scope="module")
def result():
    return run_single(tiny(), 0)


class TestCanonicalPayload:
    def test_strips_host_timing_fields(self, result):
        payload = canonical_grid_payload([[result]])
        row = payload["grid"][0][0]
        assert "wall_time_s" not in row
        assert "phase_timings" not in row
        kept = dataclasses.asdict(result)
        kept.pop("wall_time_s")
        kept.pop("phase_timings")
        assert set(row) == set(kept)

    def test_json_is_stable_across_wall_time(self, result):
        other = dataclasses.replace(result, wall_time_s=99.9)
        assert canonical_grid_json([[result]]) == canonical_grid_json(
            [[other]]
        )
        # ... and is valid single-line JSON.
        assert "\n" not in canonical_grid_json([[result]])
        json.loads(canonical_grid_json([[result]]))


class TestChunkCodec:
    def test_roundtrip(self, result):
        wire = encode_chunk_results([(0, 3, result)])
        assert isinstance(wire, str)
        [(ci, rep, back)] = decode_chunk_results(wire)
        assert (ci, rep) == (0, 3)
        assert dataclasses.asdict(back) == dataclasses.asdict(result)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="undecodable"):
            decode_chunk_results("%%% not base64 %%%")

    def test_rejects_foreign_payload_shapes(self):
        import base64
        import pickle

        not_results = base64.b64encode(
            pickle.dumps([(0, 0, "just a string")])
        ).decode("ascii")
        with pytest.raises(ValueError, match="not ExperimentResult"):
            decode_chunk_results(not_results)


class TestJobSpec:
    def test_roundtrip_through_dict(self):
        original = spec(
            configs=(tiny(), tiny(scheme="R2")), n_replications=3,
            executor="workqueue", n_workers=2, chunksize=2,
            lease_ttl_s=5.0, max_attempts=2,
        )
        clone = JobSpec.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert clone == original

    def test_rejects_unknown_fields(self):
        payload = spec().to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            JobSpec.from_dict(payload)

    def test_rejects_empty_configs(self):
        with pytest.raises(ValueError, match="at least one config"):
            JobSpec(configs=(), n_replications=1)

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            spec(executor="carrier-pigeon")

    def test_rejects_nonpositive_replications(self):
        with pytest.raises(ValueError, match="replication"):
            spec(n_replications=0)


class TestJobStore:
    def test_sequential_ids_and_spec_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.create_job(spec())
        second = store.create_job(spec(n_replications=2))
        assert [first, second] == ["job-0001", "job-0002"]
        assert store.job_ids() == [first, second]
        assert store.spec(second).n_replications == 2

    def test_ids_continue_after_restart(self, tmp_path):
        JobStore(tmp_path).create_job(spec())
        assert JobStore(tmp_path).create_job(spec()) == "job-0002"

    def test_status_lifecycle(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create_job(spec())
        assert store.read_status(job_id)["state"] == "pending"
        store.write_status(job_id, "done", total=4)
        status = store.read_status(job_id)
        assert status["state"] == "done"
        assert status["total"] == 4

    def test_unknown_state_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create_job(spec())
        with pytest.raises(ValueError, match="unknown job state"):
            store.write_status(job_id, "confused")

    def test_missing_job_raises_key_error(self, tmp_path):
        with pytest.raises(KeyError):
            JobStore(tmp_path).read_status("job-9999")

    @pytest.mark.parametrize("bad", ["../oops", "job-1/../2", "nope"])
    def test_malformed_ids_rejected(self, tmp_path, bad):
        with pytest.raises(ValueError, match="malformed"):
            JobStore(tmp_path).job_dir(bad)

    def test_results_written_as_one_canonical_line(self, tmp_path, result):
        store = JobStore(tmp_path)
        job_id = store.create_job(spec())
        assert store.read_results(job_id) is None
        store.write_results(job_id, canonical_grid_payload([[result]]))
        raw = store.read_results(job_id)
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        assert raw.decode() == canonical_grid_json([[result]]) + "\n"
