"""End-to-end sweep-service tests over real loopback HTTP.

Each test stands up a :class:`SweepService` on a free port, drives it
with the real :class:`ServiceClient`/:class:`QueueWorker`, and holds
the tentpole acceptance bar: results fetched from the service are
byte-identical to an in-process ``run_grid`` of the same configs, and
a restarted server resumes incomplete jobs from the shared disk cache
instead of recomputing finished work.
"""

import threading

import pytest

from repro.core.cache import ResultCache
from repro.core.config import ExperimentConfig
from repro.core.orchestrator import Orchestrator
from repro.core.executors import InProcessExecutor
from repro.core.parallel import run_grid
from repro.obs.manifest import RunJournal
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobSpec, JobStore, canonical_grid_json
from repro.service.server import SweepService
from repro.service.worker import QueueWorker


def tiny(**kw):
    defaults = dict(
        n_clusters=2, nodes_per_cluster=8, duration=120.0,
        offered_load=2.0, drain=True, seed=8,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


def spec(**kw):
    defaults = dict(configs=(tiny(), tiny(scheme="R2")), n_replications=2)
    defaults.update(kw)
    return JobSpec(**defaults)


def reference_json(job_spec):
    grids = run_grid(
        list(job_spec.configs),
        job_spec.n_replications,
        first_replication=job_spec.first_replication,
    )
    return (canonical_grid_json(grids) + "\n").encode("utf-8")


@pytest.fixture
def service(tmp_path):
    svc = SweepService(tmp_path / "state", port=0)
    port = svc.start()
    client = ServiceClient(f"http://127.0.0.1:{port}")
    try:
        yield svc, client
    finally:
        svc.wait_idle(timeout=30.0)
        svc.stop()


def run_worker(client_url, **kw):
    worker = QueueWorker(client_url, poll_interval_s=0.05)
    kw.setdefault("max_idle_polls", 100)
    thread = threading.Thread(
        target=worker.run, kwargs=kw, daemon=True,
    )
    thread.start()
    return worker, thread


class TestJobLifecycle:
    def test_health(self, service):
        _, client = service
        assert client.health()["ok"] is True

    def test_inprocess_job_end_to_end(self, service):
        svc, client = service
        job_spec = spec()
        job_id = client.submit(job_spec.to_dict())
        assert job_id == "job-0001"
        status = client.wait(job_id, timeout=120.0)
        assert status["state"] == "done"
        assert client.results_bytes(job_id) == reference_json(job_spec)
        # The manifest and journal landed next to the results.
        jdir = svc.store.job_dir(job_id)
        assert (jdir / "manifest.json").is_file()
        events = [
            e["event"] for e in RunJournal(jdir / "journal.jsonl").entries()
        ]
        assert events[0] == "prepared" and events[-1] == "done"

    def test_workqueue_job_with_http_worker(self, service):
        svc, client = service
        job_spec = spec(executor="workqueue", chunksize=1, lease_ttl_s=30.0)
        job_id = client.submit(job_spec.to_dict())
        url = f"http://127.0.0.1:{svc.port}"
        _, thread = run_worker(url)
        status = client.wait(job_id, timeout=120.0)
        thread.join(timeout=30.0)
        assert status["state"] == "done"
        assert client.results_bytes(job_id) == reference_json(job_spec)

    def test_second_submission_is_fully_cached(self, service):
        """Jobs share the state dir's disk cache: a repeat submission
        completes without recomputing anything."""
        svc, client = service
        job_spec = spec()
        client.wait(client.submit(job_spec.to_dict()), timeout=120.0)
        hits_before = svc.store.cache().stats.hits
        repeat = client.submit(job_spec.to_dict())
        assert client.wait(repeat, timeout=120.0)["state"] == "done"
        assert svc.store.cache().stats.hits >= hits_before + 4
        assert client.results_bytes(repeat) == reference_json(job_spec)

    def test_bad_spec_is_client_error(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client.submit({"configs": [], "n_replications": 1})
        assert err.value.status == 400

    def test_unknown_job_is_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client.status("job-4242")
        assert err.value.status == 404

    def test_cancel_workqueue_job_without_workers(self, service):
        _, client = service
        job_id = client.submit(
            spec(executor="workqueue", lease_ttl_s=60.0).to_dict()
        )
        # No workers exist, so the job parks on the queue until cancel.
        client.cancel(job_id)
        status = client.wait(job_id, timeout=60.0)
        assert status["state"] == "cancelled"
        with pytest.raises(ServiceError) as err:
            client.results_bytes(job_id)
        assert err.value.status == 404


class TestResume:
    def test_restart_resumes_pending_job(self, tmp_path):
        """A job created by a server that died before executing it is
        picked up and completed by the next server over the state dir."""
        state = tmp_path / "state"
        job_spec = spec()
        dead_store = JobStore(state)
        job_id = dead_store.create_job(job_spec)  # persisted, never run

        svc = SweepService(state, port=0)
        try:
            assert svc.start() > 0
            client = ServiceClient(f"http://127.0.0.1:{svc.port}")
            status = client.wait(job_id, timeout=120.0)
            assert status["state"] == "done"
            assert client.results_bytes(job_id) == reference_json(job_spec)
        finally:
            svc.wait_idle(timeout=30.0)
            svc.stop()

    def test_restart_reuses_partial_progress(self, tmp_path):
        """Work completed before the 'crash' resolves from the shared
        disk cache — the resumed job only computes what is missing."""
        state = tmp_path / "state"
        job_spec = spec()

        # Simulate a first server that computed half the grid (one
        # config, both reps) before being killed: its completions are
        # in the shared cache, the job's status is still "running".
        half = Orchestrator(
            [job_spec.configs[0]], 2, cache=ResultCache(state / "cache"),
        )
        half.execute(InProcessExecutor())
        dead_store = JobStore(state)
        job_id = dead_store.create_job(job_spec)
        dead_store.write_status(job_id, "running", executor="inprocess")

        svc = SweepService(state, port=0)
        try:
            svc.start()  # resume_incomplete() re-launches the job
            client = ServiceClient(f"http://127.0.0.1:{svc.port}")
            status = client.wait(job_id, timeout=120.0)
            assert status["state"] == "done"
            assert client.results_bytes(job_id) == reference_json(job_spec)
            journal = RunJournal(
                svc.store.job_dir(job_id) / "journal.jsonl"
            )
            prepared = [
                e for e in journal.entries() if e["event"] == "prepared"
            ][-1]
            assert prepared["from_cache"] == 2, (
                "the crashed server's completed tasks were not recomputed"
            )
            assert prepared["pending"] == 2
        finally:
            svc.wait_idle(timeout=30.0)
            svc.stop()

    def test_dead_worker_lease_expires_and_job_completes(self, tmp_path):
        """A worker that leases a chunk and dies does not wedge the job:
        the lease expires and another worker recomputes the chunk."""
        state = tmp_path / "state"
        svc = SweepService(state, port=0)
        try:
            svc.start()
            url = f"http://127.0.0.1:{svc.port}"
            client = ServiceClient(url)
            job_spec = spec(
                configs=(tiny(),), n_replications=2,
                executor="workqueue", chunksize=1,
                lease_ttl_s=1.0, max_attempts=5,
            )
            job_id = client.submit(job_spec.to_dict())

            # The "dead" worker: leases one chunk, then vanishes
            # without heartbeat, completion or failure report.
            dead = ServiceClient(url)
            granted = None
            while granted is None:
                granted = dead.lease("doomed-worker")
            assert granted["lease"]["attempt"] == 1

            # A live worker drains everything the dead one abandoned.
            _, thread = run_worker(url, max_idle_polls=200)
            status = client.wait(job_id, timeout=120.0)
            thread.join(timeout=30.0)
            assert status["state"] == "done"
            assert client.results_bytes(job_id) == reference_json(job_spec)
        finally:
            svc.wait_idle(timeout=30.0)
            svc.stop()
