"""Tests for the runtime invariant auditor.

Two directions: clean runs under every algorithm must produce zero
violations in ``raise`` mode (no false positives), and a deliberately
injected inconsistency must be detected and reported with obs-layer
trace context (no false negatives).
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.config import ExperimentConfig
from repro.faults import FaultConfig
from repro.obs.trace import TraceRecorder
from repro.sanitize import AuditError, InvariantAuditor, run_single_audited
from repro.sanitize.auditor import VIOLATION_KINDS, Violation
from repro.sched import CBFScheduler
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority

from ..conftest import make_request


def small_config(**overrides):
    defaults = dict(
        n_clusters=2,
        nodes_per_cluster=8,
        duration=150.0,
        offered_load=1.5,
        scheme="R2",
        drain=True,
        seed=20060619,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestCleanRuns:
    @pytest.mark.parametrize("algorithm", ["fcfs", "easy", "cbf"])
    def test_audited_run_is_clean(self, algorithm):
        """A normal run violates nothing — raise mode completes."""
        result, auditor = run_single_audited(
            small_config(algorithm=algorithm), mode="raise"
        )
        assert auditor.ok
        assert auditor.checks > 0
        assert result.n_submitted_jobs > 0

    def test_audit_does_not_change_results(self):
        """Arming the auditor is observationally transparent."""
        from repro.core.experiment import run_single
        from repro.sched.job import reset_request_ids

        cfg = small_config(algorithm="cbf")
        reset_request_ids()
        plain = run_single(cfg, 0)
        audited, auditor = run_single_audited(cfg, mode="raise")
        assert auditor.ok
        assert len(audited.jobs) == len(plain.jobs)
        assert {(j.job_id, j.start_time, j.end_time) for j in audited.jobs} \
            == {(j.job_id, j.start_time, j.end_time) for j in plain.jobs}

    def test_cbf_with_eager_compression_is_clean(self):
        _, auditor = run_single_audited(
            small_config(algorithm="cbf", cbf_compress_interval=0.0),
            mode="raise",
        )
        assert auditor.ok

    def test_outage_waives_cbf_prediction_guarantee(self):
        """Outages legally void at-submit guarantees: no false positive."""
        faults = FaultConfig(
            outage_rate=60.0,
            outage_duration=30.0,
            outage_drop_queue=False,
            resubmit_policy="resubmit",
        )
        result, auditor = run_single_audited(
            small_config(algorithm="cbf", faults=faults), mode="raise"
        )
        assert auditor.ok
        assert result.outages >= 1  # the waiver was actually exercised


class InjectedScenario:
    """A tiny hand-wired CBF run with a mid-run profile corruption."""

    def __init__(self, mode: str) -> None:
        self.sim = Simulator()
        self.tracer = TraceRecorder()
        self.auditor = InvariantAuditor(
            mode=mode, tracer=self.tracer, cbf_profile_every=1
        )
        self.sim.auditor = self.auditor
        cluster = Cluster(0, 4)
        self.cbf = CBFScheduler(self.sim, cluster)
        self.cbf.tracer = self.tracer
        self.cbf.auditor = self.auditor
        # a holds the whole cluster over [0, 10); b is reserved behind it.
        self.cbf.submit(make_request(nodes=4, runtime=10.0))
        self.cbf.submit(make_request(nodes=2, runtime=10.0))
        # Leak two nodes from the profile tail at t=5 — the kind of drift
        # a buggy release path would produce.
        self.sim.at(
            5.0,
            lambda: self.cbf.profile.adjust(30.0, 40.0, -2),
            EventPriority.CONTROL,
        )


class TestInjectedViolation:
    def test_collect_mode_reports_with_trace_context(self):
        scenario = InjectedScenario(mode="collect")
        scenario.sim.run()
        violations = scenario.auditor.violations
        assert violations, "injected profile drift went undetected"
        assert not scenario.auditor.ok
        first = violations[0]
        assert first.kind == "profile"
        assert "drifted" in first.message or "leak" in first.message
        # The obs-layer context rode along: real lifecycle events, and
        # the rendering includes them.
        assert first.trace_context
        text = first.describe()
        assert "trace context" in text
        assert "queue" in text and "start" in text

    def test_raise_mode_stops_at_first_violation(self):
        scenario = InjectedScenario(mode="raise")
        with pytest.raises(AuditError, match="profile"):
            scenario.sim.run()

    def test_violation_kind_is_registered(self):
        scenario = InjectedScenario(mode="collect")
        scenario.sim.run()
        for v in scenario.auditor.violations:
            assert v.kind in VIOLATION_KINDS


class TestViolationRendering:
    def test_describe_without_context(self):
        v = Violation(time=12.5, kind="capacity", message="boom", cluster=1)
        text = v.describe()
        assert text.startswith("[capacity] t=12.500 (cluster=1): boom")
        assert "trace context" not in text

    def test_describe_with_context(self):
        v = Violation(
            time=1.0,
            kind="state",
            message="bad",
            trace_context=((0.5, "submit", 0, 3, 7),),
        )
        text = v.describe()
        assert "trace context" in text
        assert "request=3" in text and "job=7" in text


class TestAuditorConfig:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            InvariantAuditor(mode="explode")

    def test_invalid_profile_cadence_rejected(self):
        with pytest.raises(ValueError, match="cbf_profile_every"):
            InvariantAuditor(cbf_profile_every=0)

    def test_collect_mode_caps_stored_violations(self):
        auditor = InvariantAuditor(mode="collect", max_violations=2)
        for i in range(5):
            auditor._violate(float(i), "state", f"v{i}")
        assert len(auditor.violations) == 2
        assert auditor.suppressed == 3
        assert auditor.total_violations == 5
        assert not auditor.ok
