"""Tests for the ``repro check`` orchestrator and CLI entry point."""

import json

import pytest

from repro.cli import main
from repro.core.config import ExperimentConfig
from repro.faults import FaultConfig
from repro.sanitize import run_check
from repro.sanitize.check import (
    CheckReport,
    SuiteFailure,
    config_from_spec,
    suite_configs,
)


class TestSuiteConfigs:
    def test_quick_is_a_subset_size(self):
        quick = suite_configs(quick=True)
        full = suite_configs(quick=False)
        assert len(quick) < len(full)

    def test_covers_all_algorithms_and_faults(self):
        for quick in (True, False):
            configs = suite_configs(quick)
            assert {c.algorithm for c in configs} == {"fcfs", "easy", "cbf"}
            assert any(c.faults is not None for c in configs)
            assert any(c.cancellation_latency > 0 for c in configs)

    def test_full_includes_eager_compression(self):
        assert any(
            c.cbf_compress_interval == 0.0 for c in suite_configs(False)
        )


class TestConfigFromSpec:
    def test_inline_json(self):
        cfg = config_from_spec('{"algorithm": "cbf", "scheme": "R2"}')
        assert isinstance(cfg, ExperimentConfig)
        assert cfg.algorithm == "cbf"
        assert cfg.scheme == "R2"
        assert cfg.drain  # audited-suite default

    def test_json_file_path(self, tmp_path):
        spec = tmp_path / "case.json"
        spec.write_text(json.dumps({"algorithm": "easy", "duration": 120.0}))
        cfg = config_from_spec(str(spec))
        assert cfg.algorithm == "easy"
        assert cfg.duration == 120.0

    def test_faults_object_converted(self):
        cfg = config_from_spec('{"faults": {"p_cancel_loss": 0.25}}')
        assert isinstance(cfg.faults, FaultConfig)
        assert cfg.faults.p_cancel_loss == 0.25

    def test_heterogeneous_nodes_list(self):
        cfg = config_from_spec('{"n_clusters": 2, "nodes_per_cluster": [8, 16]}')
        assert cfg.nodes_per_cluster == (8, 16)

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            config_from_spec("[1, 2]")


class TestRunCheck:
    def test_single_config_spec_skips_oracle_and_fuzz(self):
        report = run_check(
            config_spec='{"algorithm": "cbf", "scheme": "R2", '
            '"duration": 150.0}'
        )
        assert report.ok, report.render()
        assert report.suite_size == 1
        assert report.oracle is None
        assert report.fuzz is None
        assert report.checks > 0

    def test_render_ends_with_verdict(self):
        report = run_check(config_spec='{"duration": 100.0}')
        text = report.render()
        assert text.splitlines()[-1] == "PASS"
        assert "audited suite: 1 config(s), 0 failure(s)" in text

    def test_failure_flips_report(self):
        report = CheckReport(quick=True)
        assert report.ok
        report.suite_failures.append(
            SuiteFailure(config="cfg", error="RuntimeError('x')")
        )
        assert not report.ok
        assert report.render().splitlines()[-1] == "FAIL"
        assert "crashed" in report.suite_failures[0].describe()


class TestCheckCLI:
    def test_check_config_exits_zero(self, capsys):
        rc = main([
            "-q", "check",
            "--config", '{"algorithm": "easy", "duration": 150.0}',
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.strip().endswith("PASS")
        assert "invariant checks" in out
