"""Tests for the seeded fuzz harness."""

from repro.sanitize import fuzz_case_config, run_fuzz
from repro.sanitize.fuzz import FuzzFailure, FuzzReport


class TestCaseGeneration:
    def test_pure_function_of_seeds(self):
        """The same (master_seed, index) always rebuilds the same case —
        a failure report is sufficient to replay the exact scenario."""
        for index in range(10):
            assert fuzz_case_config(123, index) == fuzz_case_config(123, index)

    def test_cases_vary_with_index_and_seed(self):
        cases = [fuzz_case_config(123, i) for i in range(12)]
        assert len(set(cases)) > 1
        assert fuzz_case_config(124, 0) != fuzz_case_config(123, 0)

    def test_single_cluster_cases_have_no_redundancy(self):
        for index in range(40):
            cfg = fuzz_case_config(7, index)
            if cfg.n_clusters == 1:
                assert cfg.scheme == "NONE"

    def test_compression_only_for_cbf(self):
        for index in range(40):
            cfg = fuzz_case_config(7, index)
            if cfg.algorithm != "cbf":
                assert cfg.cbf_compress_interval is None


class TestFuzzSweep:
    def test_small_sweep_is_clean(self):
        report = run_fuzz(3, master_seed=20060619)
        assert report.ok, report.render()
        assert report.n_cases == 3
        assert report.checks > 0

    def test_progress_callback_sees_every_case(self):
        seen = []
        run_fuzz(2, master_seed=20060619, progress=seen.append)
        assert len(seen) == 2
        assert seen[0].startswith("fuzz case 1/2")


class TestFuzzReport:
    def test_failure_rendering(self):
        report = FuzzReport(master_seed=9, n_cases=1)
        report.failures.append(
            FuzzFailure(index=0, config="cfg", error="RuntimeError('x')")
        )
        assert not report.ok
        text = report.render()
        assert "1 failing case(s)" in text
        assert "crashed" in text
