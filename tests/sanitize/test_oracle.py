"""Tests for the FCFS/EASY/CBF differential oracle."""

from repro.core.config import ExperimentConfig
from repro.sanitize import run_differential_oracle
from repro.sanitize.oracle import ORACLE_ALGORITHMS, OracleFinding, OracleReport


def oracle_base():
    return ExperimentConfig(
        n_clusters=2,
        nodes_per_cluster=16,
        duration=200.0,
        offered_load=1.5,
        drain=True,
    )


class TestOracle:
    def test_relations_hold_on_seeded_workload(self):
        report = run_differential_oracle(oracle_base(), seeds=(20060619,))
        assert report.ok, report.render()
        assert report.checks > 0
        # One run per algorithm, each with a non-trivial workload.
        assert [alg for _, alg, _, _ in report.runs] == list(ORACLE_ALGORITHMS)
        assert all(jobs > 0 for _, _, jobs, _ in report.runs)

    def test_forces_relation_preconditions(self):
        """Redundancy/faults in the base config must not break the oracle:
        it re-derives a NONE, fault-free, drained configuration itself."""
        from repro.faults import FaultConfig

        base = oracle_base().with_(
            scheme="ALL",
            cancellation_latency=60.0,
            faults=FaultConfig(p_cancel_loss=0.5),
        )
        report = run_differential_oracle(base, seeds=(777,))
        assert report.ok, report.render()

    def test_deterministic(self):
        a = run_differential_oracle(oracle_base(), seeds=(424242,))
        b = run_differential_oracle(oracle_base(), seeds=(424242,))
        assert a.runs == b.runs
        assert a.findings == b.findings
        assert a.checks == b.checks

    def test_render_mentions_each_seed(self):
        report = run_differential_oracle(oracle_base(), seeds=(20060619,))
        text = report.render()
        assert "20060619" in text
        assert "all cross-scheduler relations hold" in text


class TestOracleReport:
    def test_findings_flip_ok(self):
        report = OracleReport(seeds=(1,))
        assert report.ok
        report.findings.append(OracleFinding(1, "completed-set", "differs"))
        assert not report.ok
        assert "[completed-set] seed=1" in report.findings[0].describe()
        assert "1 violation(s)" in report.render()
