"""Tests for the daily-cycle arrival modulation."""

import numpy as np
import pytest

from repro.workload.dailycycle import (
    SECONDS_PER_DAY,
    DailyCycle,
    DailyCycleGenerator,
    hourly_arrival_counts,
)
from repro.workload.lublin import LublinParams


class TestProfile:
    def test_daily_mean_is_one(self):
        cycle = DailyCycle()
        hours = np.linspace(0, 24, 960, endpoint=False)
        mults = [cycle.multiplier(h * 3600.0) for h in hours]
        assert np.mean(mults) == pytest.approx(1.0, abs=0.02)

    def test_peaks_beat_trough(self):
        cycle = DailyCycle()
        night = cycle.multiplier(3.5 * 3600.0)
        morning = cycle.multiplier(10.5 * 3600.0)
        assert morning > 2 * night

    def test_wraps_over_midnight(self):
        cycle = DailyCycle()
        assert cycle.multiplier(0.0) == pytest.approx(
            cycle.multiplier(SECONDS_PER_DAY), rel=1e-9
        )

    def test_peak_multiplier_is_max(self):
        cycle = DailyCycle()
        hours = np.linspace(0, 24, 480, endpoint=False)
        mults = [cycle.multiplier(h * 3600.0) for h in hours]
        assert cycle.peak_multiplier() == pytest.approx(max(mults), rel=0.01)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DailyCycle(trough=0.0)
        with pytest.raises(ValueError):
            DailyCycle(peak_width_hours=0.0)


class TestGenerator:
    def make(self, mean_iat=60.0, seed=0):
        params = LublinParams().with_mean_interarrival(mean_iat)
        return DailyCycleGenerator(
            params, 64, np.random.default_rng(seed)
        )

    def test_daily_count_matches_mean_rate(self):
        gen = self.make(mean_iat=60.0)
        jobs = gen.generate(SECONDS_PER_DAY)
        expected = SECONDS_PER_DAY / 60.0
        assert len(jobs) == pytest.approx(expected, rel=0.1)

    def test_daytime_busier_than_night(self):
        gen = self.make(mean_iat=30.0, seed=3)
        jobs = gen.generate(SECONDS_PER_DAY)
        counts = hourly_arrival_counts(jobs, SECONDS_PER_DAY)
        night = counts[2:5].mean()
        day = counts[9:15].mean()
        assert day > 2 * night

    def test_arrivals_sorted_within_horizon(self):
        gen = self.make()
        jobs = gen.generate(7200.0)
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals)
        assert all(0 < a <= 7200.0 for a in arrivals)

    def test_job_shapes_from_lublin(self):
        gen = self.make(mean_iat=20.0, seed=1)
        jobs = gen.generate(3 * 3600.0)
        assert all(1 <= j.nodes <= 64 for j in jobs)
        assert all(j.runtime > 0 for j in jobs)
