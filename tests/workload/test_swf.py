"""Tests for SWF trace parsing, writing and replay conversion."""

import numpy as np
import pytest

from repro.sim.rng import RngFactory
from repro.workload.stream import generate_cluster_stream
from repro.workload.swf import (
    SWFError,
    SWFRecord,
    parse_swf_line,
    read_swf,
    records_to_stream,
    stream_to_records,
    write_swf,
)

GOOD_LINE = "1 100 30 600 16 -1 -1 16 1200 -1 1 -1 -1 -1 -1 -1 -1 -1"


class TestParsing:
    def test_parse_fields(self):
        r = parse_swf_line(GOOD_LINE)
        assert r.job_id == 1
        assert r.submit_time == 100.0
        assert r.wait_time == 30.0
        assert r.run_time == 600.0
        assert r.allocated_procs == 16
        assert r.requested_time == 1200.0
        assert r.status == 1

    def test_too_few_fields(self):
        with pytest.raises(SWFError, match="expected 18"):
            parse_swf_line("1 2 3")

    def test_garbage_fields(self):
        with pytest.raises(SWFError, match="unparseable"):
            parse_swf_line(GOOD_LINE.replace("600", "xyz"))

    def test_nodes_falls_back_to_requested(self):
        line = GOOD_LINE.split()
        line[4] = "-1"  # allocated missing
        r = parse_swf_line(" ".join(line))
        assert r.nodes == 16  # requested_procs

    def test_nodes_missing_entirely(self):
        line = GOOD_LINE.split()
        line[4] = "-1"
        line[7] = "-1"
        r = parse_swf_line(" ".join(line))
        with pytest.raises(SWFError):
            _ = r.nodes

    def test_requested_time_floor_at_runtime(self):
        line = GOOD_LINE.split()
        line[8] = "10"  # requested below runtime 600
        r = parse_swf_line(" ".join(line))
        assert r.effective_requested_time == 600.0


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        records = [
            SWFRecord(i, i * 10.0, -1, 50.0 + i, 4, 4, 100.0 + i, 1)
            for i in range(1, 6)
        ]
        path = tmp_path / "trace.swf"
        n = write_swf(path, records, header_comments=["test trace"])
        assert n == 5
        back = list(read_swf(path))
        assert len(back) == 5
        assert [r.job_id for r in back] == [1, 2, 3, 4, 5]
        assert [r.run_time for r in back] == [51.0, 52.0, 53.0, 54.0, 55.0]

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text(f"; header\n\n{GOOD_LINE}\n; tail comment\n")
        assert len(list(read_swf(path))) == 1

    def test_generated_stream_survives_swf_round_trip(self, tmp_path):
        jobs = generate_cluster_stream(RngFactory(1), 0, 0, 64, 600.0)
        records = stream_to_records(jobs)
        path = tmp_path / "gen.swf"
        write_swf(path, records)
        replayed = records_to_stream(read_swf(path), max_nodes=64)
        assert len(replayed) == len(jobs)
        # SWF stores integer seconds; compare coarsely.
        for orig, back in zip(jobs, replayed):
            assert back.nodes == orig.nodes
            assert back.runtime == pytest.approx(orig.runtime, abs=1.0)


class TestReplayConversion:
    def test_failed_jobs_skipped(self):
        records = [
            SWFRecord(1, 0.0, -1, -1.0, 4, 4, 100.0, 0),   # failed, rt -1
            SWFRecord(2, 5.0, -1, 50.0, 4, 4, 100.0, 1),
        ]
        jobs = records_to_stream(records)
        assert len(jobs) == 1
        assert jobs[0].arrival == 5.0

    def test_wide_jobs_clamped(self):
        records = [SWFRecord(1, 0.0, -1, 10.0, 512, 512, 20.0, 1)]
        jobs = records_to_stream(records, max_nodes=128)
        assert jobs[0].nodes == 128

    def test_adoption_sampling(self):
        records = [
            SWFRecord(i, float(i), -1, 10.0, 1, 1, 20.0, 1)
            for i in range(1000)
        ]
        jobs = records_to_stream(
            records, adoption_probability=0.5, rng=np.random.default_rng(0)
        )
        frac = sum(j.uses_redundancy for j in jobs) / len(jobs)
        assert frac == pytest.approx(0.5, abs=0.06)

    def test_stream_sorted_by_arrival(self):
        records = [
            SWFRecord(1, 50.0, -1, 10.0, 1, 1, 10.0, 1),
            SWFRecord(2, 5.0, -1, 10.0, 1, 1, 10.0, 1),
        ]
        jobs = records_to_stream(records)
        assert [j.arrival for j in jobs] == [5.0, 50.0]
