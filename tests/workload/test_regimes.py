"""Tests for the service-time regimes (scaled Bernoulli, bi-modal)."""

import numpy as np
import pytest

from repro.workload.lublin import LublinParams
from repro.workload.regimes import (
    REGIME_NAMES,
    BimodalRegime,
    RegimeGenerator,
    ScaledBernoulliRegime,
    empirical_mean_nodes,
    make_service_regime,
    regime_scaled_for_load,
)
from repro.workload.stream import generate_cluster_stream


class TestDefinitions:
    def test_bernoulli_analytic_mean(self):
        r = ScaledBernoulliRegime(short=60.0, factor=100.0, p_large=0.02)
        # 98 % x 60 s + 2 % x 6000 s
        assert r.mean_runtime() == pytest.approx(0.98 * 60 + 0.02 * 6000)
        rng = np.random.default_rng(0)
        draws = [r.sample(rng, nodes=4) for _ in range(5000)]
        assert np.mean(draws) == pytest.approx(r.mean_runtime(), rel=0.2)

    def test_bimodal_analytic_mean(self):
        r = BimodalRegime(r_short=60.0, r_long=3600.0, p_long=0.1)
        assert r.mean_runtime() == pytest.approx(0.9 * 60 + 0.1 * 3600)

    def test_two_point_supports(self):
        rng = np.random.default_rng(1)
        bern = ScaledBernoulliRegime(scale=2.0)
        assert {bern.sample(rng, 1) for _ in range(500)} == {120.0, 12000.0}
        bim = BimodalRegime(scale=0.5)
        assert {bim.sample(rng, 1) for _ in range(500)} == {30.0, 1800.0}

    def test_with_scale_preserves_shape(self):
        r = BimodalRegime().with_scale(3.0)
        assert r.scale == 3.0
        assert r.mean_runtime() == pytest.approx(3.0 * BimodalRegime().mean_runtime())

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaledBernoulliRegime(short=-1.0)
        with pytest.raises(ValueError):
            ScaledBernoulliRegime(p_large=1.5)
        with pytest.raises(ValueError):
            BimodalRegime(r_long=0.0)
        with pytest.raises(ValueError):
            BimodalRegime(p_long=-0.1)

    def test_hashable_for_stream_memoisation(self):
        # Regimes key the cached-stream memo alongside (rep, cluster).
        a, b = ScaledBernoulliRegime(), ScaledBernoulliRegime()
        assert {a: 1}[b] == 1
        assert BimodalRegime() != ScaledBernoulliRegime()


class TestRegistry:
    def test_names(self):
        assert set(REGIME_NAMES) == {"lublin", "bernoulli", "bimodal"}

    def test_lublin_is_null_regime(self):
        assert make_service_regime("lublin") is None

    def test_mapping_case_insensitive(self):
        assert isinstance(make_service_regime("Bernoulli"),
                          ScaledBernoulliRegime)
        assert isinstance(make_service_regime("BIMODAL"), BimodalRegime)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown service regime"):
            make_service_regime("uniform")


class TestCalibration:
    def test_scale_hits_target_load_analytically(self):
        params = LublinParams()
        max_nodes = 64
        rho = 1.5
        scaled = regime_scaled_for_load(
            BimodalRegime(), rho, max_nodes, params
        )
        mean_nodes = empirical_mean_nodes(params, max_nodes)
        implied_rho = (
            mean_nodes * scaled.mean_runtime()
            / (params.mean_interarrival * max_nodes)
        )
        assert implied_rho == pytest.approx(rho)

    def test_scale_ignores_prior_scale(self):
        a = regime_scaled_for_load(BimodalRegime(scale=7.0), 1.0, 32)
        b = regime_scaled_for_load(BimodalRegime(scale=1.0), 1.0, 32)
        assert a == b

    def test_invalid_rho(self):
        with pytest.raises(ValueError, match="rho"):
            regime_scaled_for_load(BimodalRegime(), 0.0, 32)

    def test_empirical_mean_nodes_memoised_and_plausible(self):
        params = LublinParams()
        m1 = empirical_mean_nodes(params, 64)
        m2 = empirical_mean_nodes(params, 64)
        assert m1 == m2
        assert 1.0 <= m1 <= 64.0


class TestGeneration:
    def test_generator_runtimes_on_two_point_support(self):
        regime = ScaledBernoulliRegime()
        gen = RegimeGenerator(
            LublinParams(), 64, np.random.default_rng(3), regime
        )
        runtimes = {gen.sample_runtime(gen.sample_nodes())
                    for _ in range(300)}
        assert runtimes <= {60.0, 6000.0}
        assert len(runtimes) == 2

    def test_cluster_stream_uses_regime(self):
        from repro.sim.rng import RngFactory

        jobs = generate_cluster_stream(
            RngFactory(42), replication=0, cluster_index=0, max_nodes=64,
            duration=20_000.0, regime=BimodalRegime(),
        )
        assert jobs
        assert {j.runtime for j in jobs} <= {60.0, 3600.0}

    def test_stream_deterministic_per_regime(self):
        from repro.sim.rng import RngFactory

        kw = dict(replication=0, cluster_index=0, max_nodes=64,
                  duration=10_000.0)
        a = generate_cluster_stream(RngFactory(42), regime=BimodalRegime(),
                                    **kw)
        b = generate_cluster_stream(RngFactory(42), regime=BimodalRegime(),
                                    **kw)
        assert [(j.arrival, j.nodes, j.runtime) for j in a] == [
            (j.arrival, j.nodes, j.runtime) for j in b
        ]

    def test_arrival_process_shared_with_lublin(self):
        # Regimes replace only the runtime marginal; the arrival count
        # over a horizon stays in the same ballpark as pure Lublin.
        from repro.sim.rng import RngFactory

        kw = dict(replication=0, cluster_index=0, max_nodes=64,
                  duration=50_000.0)
        lublin = generate_cluster_stream(RngFactory(42), **kw)
        bimodal = generate_cluster_stream(RngFactory(42),
                                          regime=BimodalRegime(), **kw)
        assert len(bimodal) == pytest.approx(len(lublin), rel=0.3)
