"""Tests for the distribution primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.distributions import (
    HyperGamma,
    gamma_interarrival,
    log_uniform_nodes,
    two_stage_uniform,
)


@pytest.fixture
def rng():
    return np.random.default_rng(123)


class TestGammaInterarrival:
    def test_mean_matches_alpha_beta(self, rng):
        samples = [gamma_interarrival(rng, 10.23, 0.49) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(10.23 * 0.49, rel=0.02)

    def test_always_positive(self, rng):
        assert all(gamma_interarrival(rng, 4.0, 0.49) > 0 for _ in range(100))

    def test_invalid_params_rejected(self, rng):
        with pytest.raises(ValueError):
            gamma_interarrival(rng, 0.0, 1.0)
        with pytest.raises(ValueError):
            gamma_interarrival(rng, 1.0, -1.0)


class TestTwoStageUniform:
    def test_bounds(self, rng):
        for _ in range(500):
            v = two_stage_uniform(rng, 1.0, 3.0, 7.0, 0.7)
            assert 1.0 <= v <= 7.0

    def test_first_stage_probability(self, rng):
        samples = [two_stage_uniform(rng, 0.0, 1.0, 2.0, 0.8)
                   for _ in range(20000)]
        below = np.mean([s < 1.0 for s in samples])
        assert below == pytest.approx(0.8, abs=0.02)

    def test_degenerate_prob_extremes(self, rng):
        assert all(
            two_stage_uniform(rng, 0.0, 1.0, 2.0, 1.0) <= 1.0 for _ in range(50)
        )
        assert all(
            two_stage_uniform(rng, 0.0, 1.0, 2.0, 0.0) >= 1.0 for _ in range(50)
        )

    def test_bad_ordering_rejected(self, rng):
        with pytest.raises(ValueError):
            two_stage_uniform(rng, 2.0, 1.0, 3.0, 0.5)

    def test_bad_prob_rejected(self, rng):
        with pytest.raises(ValueError):
            two_stage_uniform(rng, 0.0, 1.0, 2.0, 1.5)


class TestHyperGamma:
    def test_mean_interpolates_components(self):
        hg = HyperGamma(a1=2.0, b1=1.0, a2=10.0, b2=2.0)
        assert hg.mean(1.0) == pytest.approx(2.0)
        assert hg.mean(0.0) == pytest.approx(20.0)
        assert hg.mean(0.5) == pytest.approx(11.0)

    def test_sample_mean(self, rng):
        hg = HyperGamma(a1=2.0, b1=1.0, a2=10.0, b2=2.0)
        samples = [hg.sample(rng, 0.5) for _ in range(30000)]
        assert np.mean(samples) == pytest.approx(hg.mean(0.5), rel=0.03)

    def test_p_is_clamped(self, rng):
        hg = HyperGamma(a1=2.0, b1=1.0, a2=10.0, b2=2.0)
        # p outside [0, 1] must not crash (the linear node model can
        # produce such values for extreme node counts).
        assert hg.sample(rng, 1.7) > 0
        assert hg.sample(rng, -0.5) > 0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            HyperGamma(a1=0.0, b1=1.0, a2=1.0, b2=1.0)


class TestLogUniformNodes:
    def kwargs(self):
        return dict(serial_prob=0.25, pow2_prob=0.6, ulow=0.8, umed=4.5,
                    uprob=0.86)

    def test_within_bounds(self, rng):
        for _ in range(1000):
            n = log_uniform_nodes(rng, 128, **self.kwargs())
            assert 1 <= n <= 128

    def test_serial_fraction(self, rng):
        samples = [log_uniform_nodes(rng, 128, **self.kwargs())
                   for _ in range(20000)]
        serial = np.mean([s == 1 for s in samples])
        # serial_prob plus parallel jobs that round down to 1
        assert serial >= 0.25 - 0.02
        assert serial < 0.45

    def test_power_of_two_bias(self, rng):
        samples = [log_uniform_nodes(rng, 128, **self.kwargs())
                   for _ in range(20000)]
        parallel = [s for s in samples if s > 1]
        pow2 = np.mean([(s & (s - 1)) == 0 for s in parallel])
        # With pow2_prob=0.6 plus incidental powers of two, well above half.
        assert pow2 > 0.55

    def test_single_node_cluster(self, rng):
        assert log_uniform_nodes(rng, 1, **self.kwargs()) == 1

    def test_invalid_max_nodes(self, rng):
        with pytest.raises(ValueError):
            log_uniform_nodes(rng, 0, **self.kwargs())

    @settings(max_examples=50, deadline=None)
    @given(max_nodes=st.integers(min_value=1, max_value=4096),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_never_exceeds_cluster(self, max_nodes, seed):
        rng = np.random.default_rng(seed)
        for _ in range(20):
            n = log_uniform_nodes(rng, max_nodes, **self.kwargs())
            assert 1 <= n <= max_nodes
