"""Tests for per-cluster stream generation and CRN discipline."""

import pytest

from repro.sim.rng import RngFactory
from repro.workload.estimates import PhiModelEstimates
from repro.workload.lublin import LublinParams
from repro.workload.stream import (
    generate_cluster_stream,
    generate_platform_streams,
    merge_streams,
)


@pytest.fixture
def factory():
    return RngFactory(99)


class TestClusterStream:
    def test_jobs_sorted_and_within_duration(self, factory):
        jobs = generate_cluster_stream(factory, 0, 0, 128, 600.0)
        assert all(0 < j.arrival <= 600.0 for j in jobs)
        assert [j.arrival for j in jobs] == sorted(j.arrival for j in jobs)

    def test_origin_stamped(self, factory):
        jobs = generate_cluster_stream(factory, 0, 3, 128, 300.0)
        assert all(j.origin == 3 for j in jobs)

    def test_requested_at_least_runtime(self, factory):
        jobs = generate_cluster_stream(
            factory, 0, 0, 128, 600.0, estimate_model=PhiModelEstimates()
        )
        assert all(j.requested_time >= j.runtime for j in jobs)

    def test_adoption_probability_extremes(self, factory):
        all_red = generate_cluster_stream(
            factory, 0, 0, 128, 600.0, adoption_probability=1.0
        )
        none_red = generate_cluster_stream(
            factory, 0, 0, 128, 600.0, adoption_probability=0.0
        )
        assert all(j.uses_redundancy for j in all_red)
        assert not any(j.uses_redundancy for j in none_red)

    def test_adoption_probability_fraction(self, factory):
        jobs = generate_cluster_stream(
            factory, 0, 0, 128, 3600.0, adoption_probability=0.4
        )
        frac = sum(j.uses_redundancy for j in jobs) / len(jobs)
        assert frac == pytest.approx(0.4, abs=0.08)

    def test_invalid_adoption_rejected(self, factory):
        with pytest.raises(ValueError):
            generate_cluster_stream(factory, 0, 0, 128, 60.0,
                                    adoption_probability=1.5)


class TestCommonRandomNumbers:
    def test_workload_independent_of_estimates_and_adoption(self, factory):
        """Changing the estimate model or adoption p must not perturb
        arrivals, node counts or runtimes (the pairing discipline)."""
        a = generate_cluster_stream(factory, 0, 0, 128, 900.0,
                                    adoption_probability=1.0)
        b = generate_cluster_stream(
            factory, 0, 0, 128, 900.0,
            estimate_model=PhiModelEstimates(), adoption_probability=0.3,
        )
        assert [(j.arrival, j.nodes, j.runtime) for j in a] == [
            (j.arrival, j.nodes, j.runtime) for j in b
        ]

    def test_replications_differ(self, factory):
        a = generate_cluster_stream(factory, 0, 0, 128, 900.0)
        b = generate_cluster_stream(factory, 1, 0, 128, 900.0)
        assert [j.arrival for j in a] != [j.arrival for j in b]

    def test_clusters_differ(self, factory):
        a = generate_cluster_stream(factory, 0, 0, 128, 900.0)
        b = generate_cluster_stream(factory, 0, 1, 128, 900.0)
        assert [j.arrival for j in a] != [j.arrival for j in b]


class TestPlatformStreams:
    def test_one_stream_per_cluster(self, factory):
        streams = generate_platform_streams(factory, 0, [128, 64, 32], 300.0)
        assert len(streams) == 3
        for i, stream in enumerate(streams):
            assert all(j.origin == i for j in stream)
            max_nodes = [128, 64, 32][i]
            assert all(j.nodes <= max_nodes for j in stream)

    def test_per_cluster_params(self, factory):
        fast = LublinParams().with_mean_interarrival(2.0)
        slow = LublinParams().with_mean_interarrival(50.0)
        streams = generate_platform_streams(
            factory, 0, [128, 128], 3600.0, params_per_cluster=[fast, slow]
        )
        assert len(streams[0]) > 4 * len(streams[1])

    def test_params_length_mismatch_rejected(self, factory):
        with pytest.raises(ValueError):
            generate_platform_streams(
                factory, 0, [128, 128], 60.0,
                params_per_cluster=[LublinParams()],
            )

    def test_merge_streams_global_order(self, factory):
        streams = generate_platform_streams(factory, 0, [64, 64, 64], 600.0)
        merged = merge_streams(streams)
        assert len(merged) == sum(len(s) for s in streams)
        arrivals = [j.arrival for j in merged]
        assert arrivals == sorted(arrivals)
