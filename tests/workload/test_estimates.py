"""Tests for runtime-estimate models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.estimates import (
    ExactEstimates,
    InflatedEstimates,
    PhiModelEstimates,
    PHI_MODEL_MEAN_FACTOR,
    make_estimate_model,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestExact:
    def test_identity(self, rng):
        m = ExactEstimates()
        assert m.requested_time(123.4, rng) == 123.4


class TestPhiModel:
    def test_never_below_runtime(self, rng):
        m = PhiModelEstimates()
        assert all(
            m.requested_time(10.0, rng) >= 10.0 for _ in range(1000)
        )

    def test_mean_factor_is_papers_216(self, rng):
        m = PhiModelEstimates()
        factors = [m.requested_time(1.0, rng) for _ in range(40000)]
        assert np.mean(factors) == pytest.approx(PHI_MODEL_MEAN_FACTOR, rel=0.01)

    def test_factor_uniform_upper_bound(self, rng):
        m = PhiModelEstimates()
        assert m.max_factor == pytest.approx(2 * 2.16 - 1)
        factors = [m.requested_time(1.0, rng) for _ in range(2000)]
        assert max(factors) <= m.max_factor
        assert min(factors) >= 1.0

    def test_custom_mean(self, rng):
        m = PhiModelEstimates(mean_factor=1.5)
        factors = [m.requested_time(1.0, rng) for _ in range(20000)]
        assert np.mean(factors) == pytest.approx(1.5, rel=0.02)

    def test_mean_below_one_rejected(self):
        with pytest.raises(ValueError):
            PhiModelEstimates(mean_factor=0.9)

    @settings(max_examples=50, deadline=None)
    @given(runtime=st.floats(min_value=1e-3, max_value=1e6))
    def test_property_requested_at_least_runtime(self, runtime):
        m = PhiModelEstimates()
        rng = np.random.default_rng(0)
        assert m.requested_time(runtime, rng) >= runtime


class TestInflated:
    def test_inflates_base(self, rng):
        m = InflatedEstimates(base=ExactEstimates(), inflation=0.5)
        assert m.requested_time(100.0, rng) == pytest.approx(150.0)

    def test_zero_inflation_is_base(self, rng):
        m = InflatedEstimates(base=ExactEstimates(), inflation=0.0)
        assert m.requested_time(100.0, rng) == 100.0

    def test_negative_inflation_rejected(self):
        with pytest.raises(ValueError):
            InflatedEstimates(base=ExactEstimates(), inflation=-0.1)

    def test_wraps_phi(self, rng):
        m = InflatedEstimates(base=PhiModelEstimates(), inflation=0.1)
        assert all(m.requested_time(7.0, rng) >= 7.7 for _ in range(200))


class TestFactory:
    def test_known_models(self):
        assert isinstance(make_estimate_model("exact"), ExactEstimates)
        assert isinstance(make_estimate_model("PHI"), PhiModelEstimates)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown estimate model"):
            make_estimate_model("psychic")

    def test_kwargs_forwarded(self):
        m = make_estimate_model("phi", mean_factor=3.0)
        assert m.mean_factor == 3.0
