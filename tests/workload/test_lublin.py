"""Tests for the Lublin–Feitelson workload model."""

import numpy as np
import pytest

from repro.workload.lublin import (
    LublinGenerator,
    LublinParams,
    empirical_mean_area,
    empirical_mean_runtime,
    offered_load,
    scaled_for_load,
)


@pytest.fixture
def gen():
    return LublinGenerator(LublinParams(), 128, np.random.default_rng(7))


class TestParams:
    def test_default_mean_interarrival_is_papers(self):
        assert LublinParams().mean_interarrival == pytest.approx(5.01, abs=0.01)

    def test_with_mean_interarrival_scales_alpha(self):
        p = LublinParams().with_mean_interarrival(10.0)
        assert p.mean_interarrival == pytest.approx(10.0)
        assert p.arrival_beta == LublinParams().arrival_beta

    def test_with_mean_interarrival_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LublinParams().with_mean_interarrival(0.0)

    def test_params_hashable_for_memoisation(self):
        assert hash(LublinParams()) == hash(LublinParams())


class TestSampling:
    def test_nodes_within_cluster(self, gen):
        assert all(1 <= gen.sample_nodes() <= 128 for _ in range(500))

    def test_runtime_bounds(self, gen):
        p = gen.params
        for _ in range(500):
            rt = gen.sample_runtime(gen.sample_nodes())
            assert p.min_runtime <= rt <= p.max_runtime

    def test_bigger_jobs_run_longer_on_average(self):
        """p = p_a·n + p_b with p_a < 0: node count shifts weight to the
        long-runtime component."""
        g = LublinGenerator(LublinParams(), 128, np.random.default_rng(0))
        small = np.mean([g.sample_runtime(1) for _ in range(8000)])
        big = np.mean([g.sample_runtime(128) for _ in range(8000)])
        assert big > small

    def test_interarrival_mean(self, gen):
        samples = [gen.sample_interarrival() for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(5.01, rel=0.03)

    def test_runtime_scale_scales_runtimes(self):
        base = LublinParams(min_runtime=0.0)
        scaled = LublinParams(min_runtime=0.0, runtime_scale=0.5)
        g1 = LublinGenerator(base, 128, np.random.default_rng(3))
        g2 = LublinGenerator(scaled, 128, np.random.default_rng(3))
        r1 = [g1.sample_runtime(4) for _ in range(200)]
        r2 = [g2.sample_runtime(4) for _ in range(200)]
        assert np.allclose(np.array(r2), 0.5 * np.array(r1))


class TestStreams:
    def test_jobs_until_horizon(self, gen):
        jobs = gen.generate(600.0)
        assert all(0 < j.arrival <= 600.0 for j in jobs)
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_expected_job_count(self, gen):
        jobs = gen.generate(3600.0)
        assert len(jobs) == pytest.approx(3600 / 5.01, rel=0.1)

    def test_start_offset(self, gen):
        jobs = gen.generate(200.0, start=100.0)
        assert all(100.0 < j.arrival <= 200.0 for j in jobs)

    def test_deterministic_given_rng(self):
        a = LublinGenerator(LublinParams(), 64, np.random.default_rng(5))
        b = LublinGenerator(LublinParams(), 64, np.random.default_rng(5))
        ja, jb = a.generate(300.0), b.generate(300.0)
        assert ja == jb


class TestCalibration:
    def test_authentic_load_is_extreme_overload(self):
        """The paper's own workload: ≈100x oversubscription at 5 s iat —
        the basis of its ~700 jobs/hour queue growth (DESIGN.md §3b)."""
        rho = offered_load(LublinParams(), 128, n=8000)
        assert rho > 30

    def test_scaled_for_load_hits_target(self):
        p = scaled_for_load(2.0, 128, n=8000)
        achieved = offered_load(p, 128, n=8000)
        assert achieved == pytest.approx(2.0, rel=0.1)

    def test_scaled_for_load_lower_target_smaller_scale(self):
        p1 = scaled_for_load(1.0, 128, n=4000)
        p2 = scaled_for_load(4.0, 128, n=4000)
        assert p1.runtime_scale < p2.runtime_scale

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scaled_for_load(0.0)

    def test_mean_area_positive_and_runtime_helpers(self):
        assert empirical_mean_area(n=2000) > 0
        assert empirical_mean_runtime(n=2000) > 0
