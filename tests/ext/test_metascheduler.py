"""Tests for the metascheduler baseline."""

import pytest

from repro.cluster.platform import Platform
from repro.core.config import ExperimentConfig
from repro.core.coordinator import Coordinator
from repro.ext.metascheduler import (
    MetaScheduler,
    committed_work,
    compare_with_metascheduler,
    run_metascheduler_experiment,
)
from repro.sched.job import Request
from repro.sim.engine import Simulator
from repro.workload.stream import StreamJob


def spec(origin=0, arrival=0.0, nodes=4, runtime=10.0):
    return StreamJob(origin=origin, arrival=arrival, nodes=nodes,
                     runtime=runtime, requested_time=runtime,
                     uses_redundancy=False)


class TestCommittedWork:
    def test_counts_running_remainder_and_queue(self):
        sim = Simulator()
        platform = Platform(sim, [8])
        sched = platform.schedulers[0]
        sched.submit(Request(nodes=8, runtime=10.0, requested_time=10.0))
        sched.submit(Request(nodes=4, runtime=20.0, requested_time=20.0))
        sim.run(until=5.0)
        # Running: 8 nodes x 5s left; queued: 4 x 20.
        assert committed_work(sched) == pytest.approx(8 * 5 + 4 * 20)

    def test_empty_scheduler_zero(self):
        sim = Simulator()
        platform = Platform(sim, [8])
        assert committed_work(platform.schedulers[0]) == 0.0


class TestPlacement:
    def test_chooses_least_loaded(self):
        sim = Simulator()
        platform = Platform(sim, [8, 8, 8])
        coord = Coordinator(sim, platform)
        meta = MetaScheduler(sim, platform, coord)
        # Load cluster 0 heavily, cluster 1 lightly.
        platform.schedulers[0].submit(
            Request(nodes=8, runtime=100.0, requested_time=100.0)
        )
        platform.schedulers[1].submit(
            Request(nodes=8, runtime=10.0, requested_time=10.0)
        )
        assert meta.choose_cluster(spec(nodes=4)) == 2

    def test_eligibility_respected(self):
        sim = Simulator()
        platform = Platform(sim, [16, 256])
        coord = Coordinator(sim, platform)
        meta = MetaScheduler(sim, platform, coord)
        assert meta.choose_cluster(spec(nodes=64)) == 1

    def test_no_eligible_cluster_raises(self):
        sim = Simulator()
        platform = Platform(sim, [16])
        meta = MetaScheduler(sim, platform, Coordinator(sim, platform))
        with pytest.raises(ValueError):
            meta.choose_cluster(spec(nodes=64))


class TestExperiment:
    def cfg(self):
        return ExperimentConfig(
            n_clusters=3, nodes_per_cluster=16, duration=300.0,
            offered_load=2.0, drain=True, seed=4,
        )

    def test_single_request_per_job(self):
        r = run_metascheduler_experiment(self.cfg(), 0)
        assert r.scheme == "METASCHED"
        assert r.total_requests == r.n_submitted_jobs
        assert r.total_cancellations == 0
        assert r.n_jobs == r.n_submitted_jobs  # drained

    def test_metascheduler_beats_local_only(self):
        """Informed placement load-balances, so it should improve on NONE
        (the premise of the Subramani et al. line of work)."""
        cmp_ = compare_with_metascheduler(self.cfg(), n_replications=3)
        assert cmp_.metasched_relative < 1.0

    def test_comparison_structure(self):
        cmp_ = compare_with_metascheduler(self.cfg(), n_replications=1)
        assert cmp_.none_stretch > 0
        assert cmp_.redundant_relative > 0
