"""Tests for moldable redundant requests (option iv)."""

import pytest

from repro.ext.moldable import (
    MoldableCoordinator,
    candidate_sizes,
    moldable_runtime,
    run_moldable_study,
)
from repro.cluster.cluster import Cluster
from repro.sched import EASYScheduler
from repro.sim.engine import Simulator
from repro.workload.stream import StreamJob


def spec(arrival=0.0, nodes=8, runtime=100.0, requested=None, redundant=True):
    return StreamJob(
        origin=0, arrival=arrival, nodes=nodes, runtime=runtime,
        requested_time=requested if requested is not None else runtime,
        uses_redundancy=redundant,
    )


class TestSpeedupModel:
    def test_natural_point_anchored(self):
        assert moldable_runtime(8, 100.0, 8) == 100.0

    def test_fewer_nodes_longer(self):
        assert moldable_runtime(8, 100.0, 4, alpha=1.0) == 200.0
        assert moldable_runtime(8, 100.0, 4, alpha=0.5) == pytest.approx(
            100.0 * 2 ** 0.5
        )

    def test_more_nodes_shorter(self):
        assert moldable_runtime(8, 100.0, 16, alpha=1.0) == 50.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            moldable_runtime(8, 100.0, 4, alpha=0.0)
        with pytest.raises(ValueError):
            moldable_runtime(8, -1.0, 4)
        with pytest.raises(ValueError):
            moldable_runtime(0, 100.0, 4)


class TestCandidateSizes:
    def test_half_natural_double(self):
        assert candidate_sizes(8, 128) == [4, 8, 16]

    def test_clamped_to_cluster(self):
        assert candidate_sizes(100, 128) == [50, 100, 128]

    def test_deduplicated_at_floor(self):
        assert candidate_sizes(1, 128) == [1, 2]


class TestCoordinator:
    def test_one_variant_wins_others_cancelled(self):
        sim = Simulator()
        sched = EASYScheduler(sim, Cluster(0, 32))
        coord = MoldableCoordinator(sim, sched)
        job = coord.submit_moldable(spec(nodes=8, runtime=64.0))
        sim.run()
        assert job.completed
        states = sorted(r.state.value for r in job.requests)
        assert states.count("completed") == 1
        assert states.count("cancelled") == len(job.requests) - 1

    def test_small_variant_wins_on_congested_cluster(self):
        """When the cluster is nearly full, the small variant starts first."""
        sim = Simulator()
        sched = EASYScheduler(sim, Cluster(0, 16))
        coord = MoldableCoordinator(sim, sched)
        # Occupy 12 nodes for a long time: only <=4-node requests fit.
        blocker = coord.submit_moldable(
            spec(nodes=12, runtime=1000.0, redundant=False)
        )
        job = coord.submit_moldable(spec(arrival=1.0, nodes=8, runtime=64.0))
        sim.run(until=900.0)
        assert job.winner is not None
        assert job.winner.nodes == 4
        assert job.winner.start_time == 1.0

    def test_non_redundant_submits_single_natural_size(self):
        sim = Simulator()
        sched = EASYScheduler(sim, Cluster(0, 32))
        coord = MoldableCoordinator(sim, sched)
        job = coord.submit_moldable(spec(nodes=8, redundant=False))
        sim.run()
        assert job.winner.nodes == 8
        assert len(job.requests) == 1

    def test_overestimate_preserved(self):
        sim = Simulator()
        sched = EASYScheduler(sim, Cluster(0, 32))
        coord = MoldableCoordinator(sim, sched)
        job = coord.submit_moldable(spec(nodes=8, runtime=50.0, requested=100.0))
        for r in job.requests:
            assert r.requested_time == pytest.approx(2.0 * r.runtime)


class TestStudy:
    def test_moldable_helps_under_contention(self):
        jobs = [
            spec(arrival=i * 10.0, nodes=16, runtime=300.0)
            for i in range(10)
        ]
        res = run_moldable_study(jobs, nodes=32, alpha=1.0)
        assert res.moldable_completed >= res.fixed_completed
        assert res.moldable_avg_stretch <= res.fixed_avg_stretch * 1.05

    def test_study_handles_horizon(self):
        jobs = [spec(arrival=0.0, nodes=8, runtime=50.0)]
        res = run_moldable_study(jobs, nodes=32, horizon=200.0)
        assert res.fixed_completed == 1
