"""Tests for multi-queue redundancy (options ii/iii)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.ext.multiqueue import (
    DEFAULT_QUEUES,
    MultiQueueCoordinator,
    MultiQueueScheduler,
    QueueSpec,
    run_option_iii_study,
)
from repro.sim.engine import Simulator
from repro.workload.stream import StreamJob


def spec(arrival=0.0, nodes=4, runtime=50.0, redundant=True):
    return StreamJob(origin=0, arrival=arrival, nodes=nodes, runtime=runtime,
                     requested_time=runtime, uses_redundancy=redundant)


def setup(nodes=8):
    sim = Simulator()
    sched = MultiQueueScheduler(sim, Cluster(0, nodes))
    coord = MultiQueueCoordinator(sim, sched)
    return sim, sched, coord


class TestScheduler:
    def test_premium_jumps_standard(self):
        sim, sched, coord = setup()
        # Fill the cluster so both new arrivals must wait.
        blocker = coord.submit(spec(nodes=8, runtime=100.0), ["standard"])
        waiting_std = coord.submit(
            spec(arrival=1.0, nodes=8, runtime=10.0), ["standard"]
        )
        waiting_prem = coord.submit(
            spec(arrival=2.0, nodes=8, runtime=10.0), ["premium"]
        )
        sim.run()
        # Premium submitted later but starts first.
        assert waiting_prem.winner.start_time == 100.0
        assert waiting_std.winner.start_time == 110.0

    def test_unknown_queue_rejected(self):
        sim, sched, coord = setup()
        from repro.sched.job import Request

        with pytest.raises(ValueError, match="unknown queue"):
            sched.submit_to(
                Request(nodes=1, runtime=1.0, requested_time=1.0), "vip"
            )

    def test_duplicate_queue_names_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="duplicate"):
            MultiQueueScheduler(
                sim, Cluster(0, 8),
                [QueueSpec("q", 0, 1.0), QueueSpec("q", 1, 2.0)],
            )

    def test_nonpositive_cost_rejected(self):
        with pytest.raises(ValueError):
            QueueSpec("q", 0, 0.0)


class TestCoordinator:
    def test_first_start_wins_across_queues(self):
        sim, sched, coord = setup()
        blocker = coord.submit(spec(nodes=8, runtime=100.0), ["premium"])
        job = coord.submit(
            spec(arrival=1.0, nodes=8, runtime=10.0),
            ["premium", "standard"],
        )
        sim.run()
        assert job.completed
        assert job.winner_queue == "premium"  # higher priority at t=100
        assert job.requests["standard"].state.value == "cancelled"

    def test_billing_uses_winner_queue(self):
        sim, sched, coord = setup()
        job = coord.submit(spec(nodes=4, runtime=10.0), ["premium"])
        sim.run()
        assert job.cost(sched) == pytest.approx(4 * 10.0 * 2.5)

    def test_cost_before_start_rejected(self):
        sim, sched, coord = setup()
        job = coord.submit(spec(), ["standard"])
        with pytest.raises(ValueError):
            job.cost(sched)

    def test_empty_targets_rejected(self):
        sim, sched, coord = setup()
        with pytest.raises(ValueError):
            coord.submit(spec(), [])


class TestStudy:
    @pytest.fixture(scope="class")
    def outcomes(self):
        jobs = [
            spec(arrival=i * 10.0, nodes=4, runtime=120.0)
            for i in range(40)
        ]
        return {
            o.strategy: o
            for o in run_option_iii_study(jobs, nodes=8, seed=2)
        }

    def test_three_strategies(self, outcomes):
        assert set(outcomes) == {"standard", "premium", "redundant"}
        assert all(o.completed > 0 for o in outcomes.values())

    def test_redundant_at_least_as_fast_as_standard(self, outcomes):
        assert (
            outcomes["redundant"].mean_turnaround
            <= outcomes["standard"].mean_turnaround + 1e-6
        )

    def test_redundant_cheaper_than_premium_only(self, outcomes):
        """The option-(iii) trade: some wins come from the cheap queue,
        so the average bill sits below all-premium."""
        assert (
            outcomes["redundant"].mean_cost
            <= outcomes["premium"].mean_cost + 1e-6
        )

    def test_standard_is_cheapest(self, outcomes):
        assert outcomes["standard"].mean_cost <= outcomes["redundant"].mean_cost
