"""Extension benches: the future-work directions the paper names.

* metascheduler vs user-driven redundancy (Section 2's contrast);
* the binomial-method statistical predictor under redundancy churn
  (Section 5/6's open question);
* moldable redundant requests, option (iv) of Section 2.
"""

import numpy as np

from repro.analysis.registry import calibrated_config
from repro.analysis.tables import Table
from repro.core.runner import run_replications
from repro.ext.metascheduler import compare_with_metascheduler
from repro.ext.moldable import run_moldable_study
from repro.predict.binomial import evaluate_predictor
from repro.sim.rng import RngFactory
from repro.workload.lublin import scaled_for_load
from repro.workload.stream import generate_cluster_stream


def test_ext_metascheduler_comparison(benchmark, scale):
    """Informed single placement vs brute-force redundancy.

    The paper argues metascheduled redundant requests 'play nice'; the
    interesting quantification is how close informed single placement
    gets to brute-force fan-out."""

    def run():
        cfg = calibrated_config(
            scale, n_clusters=6, nodes_per_cluster=64,
            duration=min(scale.duration, 1800.0),
        )
        return compare_with_metascheduler(
            cfg, n_replications=scale.n_replications, redundant_scheme="ALL"
        )

    cmp_ = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Extension — metascheduler vs redundancy",
                  columns=["avg stretch", "relative to NONE"])
    table.add_row("NONE (local only)", [cmp_.none_stretch, 1.0])
    table.add_row("metascheduler", [cmp_.metasched_stretch,
                                    cmp_.metasched_relative])
    table.add_row("redundancy (ALL)", [cmp_.redundant_stretch,
                                       cmp_.redundant_relative])
    print()
    print(table.to_text())
    # Brute-force redundancy reliably helps; informed single placement
    # helps on average but its committed-work signal is blind to
    # backfilling, so at small replication counts it can land near (or
    # slightly above) parity.
    assert cmp_.redundant_relative < 1.0
    assert cmp_.metasched_relative < 1.25


def test_ext_binomial_predictor_under_churn(benchmark, scale):
    """Section 6: 'It would be interesting to explore the effect of
    redundant requests on these [statistical] techniques.'

    We compare the binomial quantile predictor's coverage on the wait
    stream of a NONE run vs an ALL run (paired workloads)."""

    def run():
        cfg = calibrated_config(
            scale, n_clusters=6, nodes_per_cluster=64,
            duration=min(scale.duration, 1800.0),
        )
        out = {}
        for scheme in ("NONE", "ALL"):
            results = run_replications(
                cfg.with_(scheme=scheme), scale.n_replications
            )
            coverages = []
            for res in results:
                jobs = sorted(res.jobs, key=lambda j: j.end_time)
                waits = [j.wait_time for j in jobs]
                rep = evaluate_predictor(waits, quantile=0.9,
                                         confidence=0.9, window=150)
                if rep.n_predictions > 50:
                    coverages.append(rep.coverage)
            out[scheme] = float(np.mean(coverages)) if coverages else float("nan")
        return out

    cov = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nbinomial predictor coverage (target 0.90): "
          f"NONE={cov['NONE']:.3f}, ALL={cov['ALL']:.3f}")
    # The statistical predictor stays usable under churn — the paper's
    # conjecture that such methods are the more promising route.
    assert cov["NONE"] > 0.7
    assert cov["ALL"] > 0.6


def test_ext_moldable_redundancy(benchmark, scale):
    """Option (iv): size-variant redundant requests in one queue."""

    def run():
        params = scaled_for_load(2.0, 64)
        jobs = generate_cluster_stream(
            RngFactory(7), 0, 0, 64, min(scale.duration, 1800.0),
            params=params,
        )
        return run_moldable_study(jobs, nodes=64, alpha=0.9)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nmoldable: fixed stretch={res.fixed_avg_stretch:.1f} "
          f"({res.fixed_completed} jobs), "
          f"moldable stretch={res.moldable_avg_stretch:.1f} "
          f"({res.moldable_completed} jobs) -> "
          f"relative {res.relative_stretch:.2f}")
    assert res.moldable_completed >= res.fixed_completed
    # Moldable redundancy should help under contention.
    assert res.relative_stretch < 1.2
