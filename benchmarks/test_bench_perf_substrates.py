"""Performance microbenchmarks of the simulation substrates.

Not a paper artifact — these track the wall-clock cost of the hot paths
(event loop, availability profile, scheduler passes, workload sampling,
a full experiment) so performance regressions show up in the benchmark
history.  The paper-scale runs depend on these staying fast: its
workloads push queues into the thousands.
"""

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.config import ExperimentConfig
from repro.core.experiment import run_single
from repro.sched import EASYScheduler
from repro.sched.job import Request
from repro.sched.profile import Profile
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.rng import RngFactory
from repro.workload.lublin import LublinGenerator, LublinParams


def test_perf_event_loop(benchmark, scale):
    """Schedule and execute 20k interleaved events."""

    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(20_000):
            sim.at(float(i % 997), tick, EventPriority.CONTROL)
        sim.run()
        return count

    assert benchmark(run) == 20_000


def test_perf_profile_operations(benchmark, scale):
    """Reserve/find/adjust churn on a long availability profile."""

    def run():
        prof = Profile(0.0, 128, 128)
        rng = np.random.default_rng(0)
        for _ in range(1500):
            nodes = int(rng.integers(1, 64))
            duration = float(rng.uniform(10, 500))
            start = prof.find_start(nodes, duration, float(rng.uniform(0, 5000)))
            prof.reserve(start, duration, nodes)
        return len(prof)

    assert benchmark(run) > 0


def test_perf_easy_overloaded_queue(benchmark, scale):
    """Submission churn against a blocked EASY queue (the O(1)-guard path)."""

    def run():
        sim = Simulator()
        sched = EASYScheduler(sim, Cluster(0, 128))
        sched.submit(Request(nodes=128, runtime=1e9, requested_time=1e9))
        sim.run(until=0.0)
        for i in range(4000):
            sim.at(
                float(i),
                lambda: sched.submit(
                    Request(nodes=8, runtime=100.0, requested_time=100.0)
                ),
                EventPriority.SUBMIT,
            )
        sim.run(until=4000.0)
        return sched.queue_length

    assert benchmark(run) == 4000


def test_perf_lublin_sampling(benchmark, scale):
    """Draw 10k jobs from the workload model."""

    def run():
        gen = LublinGenerator(LublinParams(), 128,
                              np.random.default_rng(1))
        total = 0.0
        for _ in range(10_000):
            total += gen.sample_runtime(gen.sample_nodes())
        return total

    assert benchmark(run) > 0


def test_perf_full_experiment(benchmark, scale):
    """One small end-to-end drained experiment (N=4, 10 min, R2)."""
    cfg = ExperimentConfig(
        n_clusters=4, nodes_per_cluster=32, duration=600.0,
        offered_load=2.0, drain=True, scheme="R2", seed=9,
    )

    result = benchmark.pedantic(
        run_single, args=(cfg, 0), rounds=3, iterations=1
    )
    assert result.n_jobs == result.n_submitted_jobs
