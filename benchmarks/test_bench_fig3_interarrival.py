"""Figure 3: sensitivity to the job inter-arrival time (a load sweep).

Paper: N=10, Gamma shape α varied over [4, 20] (mean inter-arrival
≈2-10 s).  Expectation: redundancy improves the average stretch at
every load level (all relative values < 1).
"""

import math

from .conftest import regenerate


def test_fig3_interarrival_sweep(benchmark, scale):
    report = regenerate(benchmark, "fig3", scale)
    rel = report.data["relative_avg_stretch"]

    for scheme, series in rel.items():
        finite = {k: v for k, v in series.items() if math.isfinite(v)}
        assert finite, f"{scheme}: no finite values"
        beneficial = sum(v < 1.0 for v in finite.values())
        # Redundancy helps across (nearly) the whole load range.
        assert beneficial >= max(1, len(finite) - 1), (
            f"{scheme}: beneficial at only {beneficial}/{len(finite)} loads"
        )
