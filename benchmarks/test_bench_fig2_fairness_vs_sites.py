"""Figure 2: relative coefficient of variation of stretches (fairness).

Paper expectation: redundancy improves fairness ~10-25 % at every N
(relative CV 0.75-0.9); the relative maximum stretch improves even more
(10-60 %).  Shares the sites sweep with the Figure 1 bench (cached), so
this bench times only the aggregation.
"""

import math

from .conftest import regenerate


def test_fig2_relative_cv_vs_sites(benchmark, scale):
    report = regenerate(benchmark, "fig2", scale)
    rel_cv = report.data["relative_cv"]
    rel_max = report.data["relative_max_stretch"]

    biggest_n = max(next(iter(rel_cv.values())))
    finite = [
        v for series in rel_cv.values() for v in series.values()
        if math.isfinite(v)
    ]
    assert finite, "no finite CV ratios measured"

    # Fairness at the largest platform: CV not degraded (paper: improved).
    for scheme in ("HALF", "ALL"):
        assert rel_cv[scheme][biggest_n] < 1.25

    # The paper's stronger fairness signal: max stretch improves.
    for scheme in ("HALF", "ALL"):
        assert rel_max[scheme][biggest_n] < 1.0, (
            f"{scheme}: relative max stretch "
            f"{rel_max[scheme][biggest_n]:.2f} >= 1"
        )
