"""Benchmarks for the parallel sweep engine and the result cache.

Exercises the acceptance criteria of the parallel-sweep work: a full
5-scheme x 16-replication grid through ``compare_schemes`` with worker
processes, plus cold/warm cache runs demonstrating that a warm rerun
performs zero simulation.  The machine-readable variant of the same
measurement is ``repro bench --json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.cache import ResultCache
from repro.core.config import ExperimentConfig
from repro.core.runner import compare_schemes

SCHEMES = ["R2", "R3", "R4", "HALF", "ALL"]
N_REPLICATIONS = 16


def _grid_config() -> ExperimentConfig:
    return ExperimentConfig(
        n_clusters=5, nodes_per_cluster=32, duration=900.0,
        offered_load=2.0, drain=True, seed=20060619,
    )


def _time(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_bench_parallel_grid(benchmark):
    """Headline number: the flattened grid with 4 worker processes."""
    cfg = _grid_config()
    result = benchmark.pedantic(
        compare_schemes,
        args=(cfg, SCHEMES, N_REPLICATIONS),
        kwargs={"n_workers": 4},
        rounds=1, iterations=1,
    )
    print(f"\n[parallel-sweep] {len(SCHEMES)} schemes x {N_REPLICATIONS} reps, "
          f"4 workers on {os.cpu_count()} CPUs")
    for scheme in SCHEMES:
        rel = result.relative(scheme)
        print(f"  {scheme:>8}: stretch x{rel.avg_stretch:.3f}")


def test_bench_parallel_speedup_and_determinism():
    """Serial vs parallel wall time; results must be identical."""
    cfg = _grid_config()
    serial, t_serial = _time(
        lambda: compare_schemes(cfg, SCHEMES, N_REPLICATIONS, n_workers=1)
    )
    parallel, t_parallel = _time(
        lambda: compare_schemes(cfg, SCHEMES, N_REPLICATIONS, n_workers=4)
    )

    for scheme in SCHEMES:
        assert serial.relative(scheme) == parallel.relative(scheme), (
            f"parallel output diverged from serial for {scheme}"
        )
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    print(f"\n[parallel-sweep] serial {t_serial:.2f}s, "
          f"4 workers {t_parallel:.2f}s, speedup x{speedup:.2f} "
          f"({os.cpu_count()} CPUs)")
    if (os.cpu_count() or 1) < 4:
        pytest.skip(
            f"speedup assertion needs >= 4 CPUs, have {os.cpu_count()}"
        )
    assert speedup >= 2.0, (
        f"expected >= 2x speedup with 4 workers, got x{speedup:.2f}"
    )


def test_bench_warm_cache_skips_simulation(tmp_path):
    """A warm rerun of the full grid must be pure cache hits."""
    cfg = _grid_config()
    cache = ResultCache(tmp_path)
    n_tasks = (len(SCHEMES) + 1) * N_REPLICATIONS  # schemes + NONE baseline

    cold, t_cold = _time(
        lambda: compare_schemes(cfg, SCHEMES, N_REPLICATIONS, cache=cache)
    )
    assert cache.stats.stores == n_tasks

    cache.clear_memory()  # warm run must survive on the disk layer alone
    hits_before = cache.stats.hits
    warm, t_warm = _time(
        lambda: compare_schemes(cfg, SCHEMES, N_REPLICATIONS, cache=cache)
    )

    assert cache.stats.hits - hits_before == n_tasks, "warm run simulated"
    assert cache.stats.stores == n_tasks, "warm run re-stored entries"
    for scheme in SCHEMES:
        assert cold.relative(scheme) == warm.relative(scheme)
    print(f"\n[result-cache] cold {t_cold:.2f}s, warm {t_warm:.3f}s "
          f"({n_tasks} tasks, {cache.stats.hits - hits_before} hits)")
    assert t_warm < t_cold, "warm rerun should be faster than cold"
