"""Figure 5: batch-scheduler throughput under submission/cancellation churn.

Paper: a real OpenPBS/Maui installation saturated with qsub/qdel churn;
≈11+11 ops/s at an empty queue decaying "somewhat exponentially" to
≈5+5 ops/s at 20,000 pending requests.  Here: the calibrated daemon
model driven through the same protocol, plus a wall-clock measurement
of this package's own schedulers as the measured analogue.
"""

from .conftest import regenerate


def test_fig5_churn_throughput(benchmark, scale):
    report = regenerate(benchmark, "fig5", scale)
    avg = report.data["average"]

    qs = sorted(avg)
    # Paper anchors (the model is calibrated to them; the churn driver
    # must reproduce them through the protocol, noise included).
    assert abs(avg[qs[0]] - 11.0) < 0.8
    assert abs(avg[qs[-1]] - 5.0) < 0.8
    # Monotone decay, sharp first.
    values = [avg[q] for q in qs]
    assert all(a >= b - 0.2 for a, b in zip(values, values[1:]))
    if len(qs) >= 3:
        mid = qs[len(qs) // 2]
        early_drop = avg[qs[0]] - avg[mid]
        late_drop = avg[mid] - avg[qs[-1]]
        assert early_drop > late_drop

    # Our own schedulers sustain far more than the 1 GHz P-III daemon.
    real = report.data["real_schedulers"]
    assert all(rate > 100 for rate in real.values())
