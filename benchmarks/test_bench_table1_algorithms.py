"""Table 1: scheduling algorithms x runtime-estimate regimes.

Paper: N=10, HALF; EASY, CBF and FCFS; exact vs real (φ-model)
estimates.  Expectation: every relative metric below 1 (paper values
0.83-0.93) — the benefit of redundancy is robust to the scheduling
algorithm and to estimate quality.
"""

from .conftest import regenerate


def test_table1_algorithms_and_estimates(benchmark, scale):
    report = regenerate(benchmark, "tab1", scale)
    cells = report.data["cells"]

    assert set(cells) == {
        f"{a}/{e}" for a in ("easy", "cbf", "fcfs") for e in ("exact", "phi")
    }
    # The paper's claim: beneficial in every cell.  Allow slight noise
    # above parity at reduced scale for the weakest combination.
    for key, metrics in cells.items():
        assert metrics["avg_stretch"] < 1.1, (
            f"{key}: relative stretch {metrics['avg_stretch']:.2f}"
        )
    beneficial = sum(m["avg_stretch"] < 1.0 for m in cells.values())
    assert beneficial >= 5, f"only {beneficial}/6 cells beneficial"
