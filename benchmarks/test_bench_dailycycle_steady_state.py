"""Steady state under the full daily cycle: queues breathe, not explode.

The paper's Section 4.1 queue-size claim lives in steady state.  With
the daily-cycle arrival modulation (the part of the Lublin model the
paper switched off), peak-hour backlogs drain overnight; this bench
verifies the breathing pattern and that the ALL scheme leaves the
system's live-request count close to the no-redundancy baseline.
"""

import numpy as np

from repro.analysis.tables import Table
from repro.cluster.platform import Platform
from repro.core.coordinator import Coordinator
from repro.core.schemes import TargetSelector, get_scheme
from repro.analysis.timelines import (
    peak,
    queue_length_timeline,
    system_request_timeline,
    time_average,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.workload.dailycycle import SECONDS_PER_DAY, DailyCycleGenerator
from repro.workload.lublin import scaled_for_load
from repro.workload.stream import StreamJob

N_CLUSTERS = 4
NODES = 64


def _run(scheme_name: str, horizon: float):
    sim = Simulator()
    platform = Platform(sim, [NODES] * N_CLUSTERS, algorithm="easy")
    coord = Coordinator(sim, platform)
    selector = TargetSelector(
        get_scheme(scheme_name), [NODES] * N_CLUSTERS,
        np.random.default_rng(3),
    )
    # Daily mean load ~0.7 (stable), peaking above 1 at midday.  A 30 s
    # mean inter-arrival keeps the day at ~2,900 jobs/cluster.
    from repro.workload.lublin import LublinParams

    base = LublinParams().with_mean_interarrival(30.0)
    params = scaled_for_load(0.7, NODES, base)
    for cluster in range(N_CLUSTERS):
        gen = DailyCycleGenerator(
            params, NODES,
            RngFactory(31).generator("cluster", cluster),
        )
        for raw in gen.jobs_until(horizon):
            spec = StreamJob(
                origin=cluster, arrival=raw.arrival, nodes=raw.nodes,
                runtime=raw.runtime, requested_time=raw.runtime,
                uses_redundancy=True,
            )
            coord.schedule_job(
                spec, selector.choose(cluster, raw.nodes, True)
            )
    sim.run()
    return coord


def test_dailycycle_steady_state(benchmark, scale):
    horizon = SECONDS_PER_DAY  # one full day of submissions

    def run():
        return {s: _run(s, horizon) for s in ("NONE", "ALL")}

    coords = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        "Daily cycle — live requests in the system over one day",
        columns=["night avg (02-06h)", "midday avg (12-16h)",
                 "peak live requests", "peak queue (C0)"],
    )
    stats = {}
    for name, coord in coords.items():
        series = system_request_timeline(coord.jobs)
        q0 = queue_length_timeline(coord.jobs, 0)
        stats[name] = dict(
            night=time_average(series, 2 * 3600.0, 6 * 3600.0),
            midday=time_average(series, 12 * 3600.0, 16 * 3600.0),
            peak=peak(series),
            q0=peak(q0),
        )
        table.add_row(name, [
            stats[name]["night"], stats[name]["midday"],
            stats[name]["peak"], stats[name]["q0"],
        ])
    print()
    print(table.to_text())

    # The breathing pattern: the midday hump towers over the night lull
    # (under the paper's constant peak-hour regime there is no lull and
    # queues only grow — the daily cycle is what makes steady state).
    assert stats["NONE"]["midday"] > 3.0 * max(stats["NONE"]["night"], 1.0)
    # The paper's claim: in steady state, redundancy does not put
    # significantly more requests in the system (cancellation keeps
    # ~1 live request per job); check the quiet-period average.
    assert stats["ALL"]["night"] < 2.0 * stats["NONE"]["night"] + 20
