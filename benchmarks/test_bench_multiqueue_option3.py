"""Option (iii): redundant requests across queues of a single resource.

Section 2 frames this as a money-for-time trade: "Different queues
typically correspond to higher service unit costs.  The question is
then whether one should wait possibly a long time for a cheaper
resource allocation."  The study compares all-standard, all-premium and
redundant-across-both strategies on turnaround and bill.
"""

import numpy as np

from repro.analysis.tables import Table
from repro.ext.multiqueue import run_option_iii_study
from repro.sim.rng import RngFactory
from repro.workload.lublin import scaled_for_load
from repro.workload.stream import generate_cluster_stream


def test_multiqueue_option_iii(benchmark, scale):
    def run():
        params = scaled_for_load(2.0, 64)
        jobs = generate_cluster_stream(
            RngFactory(13), 0, 0, 64, min(scale.duration, 1800.0),
            params=params,
        )
        return {
            o.strategy: o
            for o in run_option_iii_study(jobs, nodes=64, seed=13)
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Option (iii) — one resource, premium (2.5x cost) + standard queues",
        columns=["mean turnaround (s)", "mean cost (SU)", "jobs"],
    )
    for name in ("standard", "premium", "redundant"):
        o = outcomes[name]
        table.add_row(name, [o.mean_turnaround, o.mean_cost, o.completed])
    print()
    print(table.to_text())

    # The redundant strategy dominates standard on time...
    assert (
        outcomes["redundant"].mean_turnaround
        <= outcomes["standard"].mean_turnaround * 1.02
    )
    # ...and premium on money.
    assert (
        outcomes["redundant"].mean_cost
        <= outcomes["premium"].mean_cost * 1.02
    )
