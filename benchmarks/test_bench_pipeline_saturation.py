"""Section 4.2 by simulation: the middleware saturation cliff.

The analytic capacity bound says GT4 WS-GRAM tolerates r < 3 redundant
requests per job at peak arrivals while the scheduler daemon tolerates
r < 30.  This bench drives the tandem user→GRAM→PBS pipeline in
simulated time across redundancy levels and shows the cliff where the
middleware backlog starts growing without bound.
"""

from repro.analysis.tables import Table
from repro.middleware.pbs import PBSDaemonModel
from repro.middleware.pipeline import redundancy_sweep


def test_pipeline_saturation_cliff(benchmark, scale):
    def run():
        return redundancy_sweep(
            levels=(1, 2, 3, 4, 6, 10),
            horizon=min(scale.churn_duration, 3600.0),
            daemon=PBSDaemonModel(noise_cv=0.0, oom_queue_size=None),
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Middleware pipeline vs redundancy level (per cluster, iat = 5 s)",
        columns=["GRAM util.", "PBS util.", "GRAM backlog",
                 "mean latency (s)", "saturated"],
    )
    for r in results:
        table.add_row(f"r = {r.redundancy}", [
            r.middleware_utilization,
            r.scheduler_utilization,
            r.middleware_backlog,
            r.mean_end_to_end_latency,
            str(r.middleware_saturated),
        ])
    print()
    print(table.to_text())

    by_r = {r.redundancy: r for r in results}
    assert not by_r[1].middleware_saturated
    assert not by_r[2].middleware_saturated
    assert by_r[4].middleware_saturated   # the paper: "r < 3"
    assert by_r[10].middleware_saturated
    # The scheduler stage never breaks a sweat — the middleware gates.
    assert all(r.scheduler_utilization < 0.6 for r in results)
