"""Section 4: capacity analysis and simulation-backed load studies.

Paper numbers reproduced exactly by construction: the batch scheduler
tolerates r < 30 redundant requests per job at peak arrival rates, the
GT4 WS-GRAM middleware only r < 3, so the middleware is the system
bottleneck.  Simulation-backed: queue growth ≈700 jobs/hour under the
authentic peak-hour workload independently of cluster size, and the
ALL scheme's effect on maximum queue sizes in steady state.
"""

from .conftest import regenerate


def test_sec4_capacity_and_load(benchmark, scale):
    report = regenerate(benchmark, "sec4", scale)

    # The paper's two headline bounds.
    assert 25 <= report.data["scheduler_max_r"] <= 32   # "r < 30"
    assert report.data["middleware_max_r"] == 2          # "r < 3"
    assert report.data["bottleneck"] == "middleware"

    # Queue growth: hundreds per hour, roughly size-independent.
    growth = report.data["growth_per_hour"]
    values = list(growth.values())
    assert all(v > 300 for v in values)
    assert max(values) / min(values) < 1.8, (
        "queue growth should be roughly independent of cluster size"
    )

    # Steady state: ALL does not blow up queue sizes (paper: < +2%).
    # We consistently measure a *decrease* — redundancy shaves transient
    # queue peaks by balancing them away — which satisfies the claim's
    # direction ("not significantly more requests in the system").
    assert report.data["queue_increase"] < 0.5
