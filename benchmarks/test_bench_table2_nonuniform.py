"""Table 2: non-uniformly distributed redundant requests.

Paper: remote clusters picked with a heavy geometric bias (C1 twice as
likely as C2, ...), N=10.  Expectation: redundancy remains beneficial
and close to the uniform case (paper: stretch 0.88-0.95, CV 0.86-0.94).
"""

from .conftest import regenerate


def test_table2_biased_target_distribution(benchmark, scale):
    report = regenerate(benchmark, "tab2", scale)
    rel = report.data["relative_avg_stretch"]
    assert set(rel) == {"R2", "R3", "R4", "HALF"}
    for scheme, value in rel.items():
        assert value < 1.0, f"{scheme}: {value:.2f} >= 1 under bias"
