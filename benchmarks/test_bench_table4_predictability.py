"""Table 4: impact of redundancy on queue-wait predictability.

Paper: N=10 CBF clusters, real (φ-model) estimates.  Baseline: waits
over-predicted ≈9x on average (CV ≈205 %) because CBF plans with
~2.16x-padded requested times.  With 40 % of jobs using ALL, the
over-prediction grows for both populations (paper: ≈8x worse for
non-redundant jobs, ≈4x for redundant jobs).
"""

from .conftest import regenerate


def test_table4_prediction_degradation(benchmark, scale):
    report = regenerate(benchmark, "tab4", scale)

    # CBF + padded estimates over-predict even with no redundancy.
    assert report.data["baseline"] > 1.5

    # Redundancy-induced churn degrades predictions for both populations.
    assert report.data["degradation_nr"] > 1.0
    assert report.data["degradation_r"] > 1.0

    # And predictions for redundant jobs (min over copies against tiny
    # effective waits) are at least as inflated as the baseline's.
    assert report.data["redundant"] > report.data["baseline"]
