"""Figure 1: relative average stretch vs number of sites.

Paper: N identical 128-node clusters under EASY; schemes R2/R3/R4/HALF/
ALL relative to NONE over paired replications.  Expectation: redundancy
beneficial for N > 5 (paper: 10-25 % better), weakest/absent benefit at
N <= 5, and redundancy wins in the large majority of replications at
N >= 10.
"""

import math

from .conftest import regenerate


def test_fig1_relative_stretch_vs_sites(benchmark, scale):
    report = regenerate(benchmark, "fig1", scale)
    rel = report.data["relative_avg_stretch"]

    biggest_n = max(next(iter(rel.values())))
    for scheme, series in rel.items():
        assert all(math.isfinite(v) for v in series.values()), scheme
        # Headline claim: at the largest platform, redundancy helps.
        assert series[biggest_n] < 1.0, (
            f"{scheme} at N={biggest_n}: relative stretch "
            f"{series[biggest_n]:.2f} >= 1"
        )

    # Benefit grows with platform size (compare smallest vs largest N);
    # needs a few replications to rise above pairing noise.
    if scale.n_replications >= 3:
        smallest_n = min(next(iter(rel.values())))
        for scheme in ("R2", "HALF"):
            assert rel[scheme][biggest_n] <= rel[scheme][smallest_n] + 0.15

    # At the largest N redundancy wins most paired replications.
    wins = report.data["best_win_fraction"]
    assert wins[biggest_n] >= 0.5
