"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper through the
experiment registry (``repro.analysis.registry``) and prints it, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
report.  Scale via ``REPRO_SCALE`` (smoke | default | paper) and
parallelise replications via ``REPRO_WORKERS``.
"""

from __future__ import annotations

import pytest

from repro.analysis.registry import current_scale, run_experiment


@pytest.fixture(scope="session")
def scale():
    s = current_scale()
    print(f"\n[repro] benchmark scale: {s.name} "
          f"(duration {s.duration:.0f}s, {s.n_replications} replications)")
    return s


def regenerate(benchmark, exp_id: str, scale):
    """Time one full regeneration of an experiment and print its report."""
    report = benchmark.pedantic(
        run_experiment, args=(exp_id, scale), rounds=1, iterations=1
    )
    print()
    print(report.render())
    return report
