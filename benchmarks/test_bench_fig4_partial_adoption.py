"""Figure 4: the penalty for not using redundant requests.

Paper: N=10; a fraction p of jobs uses redundancy.  Expectations:
redundant jobs always beat non-redundant ones at the same p; the
non-adopters' penalty grows with p and with the scheme's redundancy;
full adoption still beats no adoption.
"""

import math

from .conftest import regenerate


def test_fig4_partial_adoption(benchmark, scale):
    report = regenerate(benchmark, "fig4", scale)

    for scheme in ("R2", "HALF", "ALL"):
        series = report.data[scheme]
        # r jobs beat n-r jobs wherever both populations exist.
        for p, r_val in series["r"].items():
            nr_val = series["nr"].get(p, float("nan"))
            if math.isfinite(r_val) and math.isfinite(nr_val):
                assert r_val < nr_val, (
                    f"{scheme} p={p}: r jobs {r_val:.1f} "
                    f">= n-r jobs {nr_val:.1f}"
                )

    # Paired non-adopter penalty: above parity at high adoption for the
    # heavy scheme (at p=1.0 no non-adopters exist, so use the largest
    # adoption level that still has them).
    penalty = report.data["penalty"]["ALL"]
    finite_ps = [p for p in sorted(penalty) if penalty[p] == penalty[p]]
    assert finite_ps, "no adoption level with a measurable n-r population"
    top = finite_ps[-1]
    assert penalty[top] > 0.95, (
        f"ALL at p={top}: paired penalty {penalty[top]:.2f} — the paper "
        "finds non-adopters penalized"
    )

    # Full adoption beats no adoption (overall average).
    all_series = report.data["ALL"]
    nr_p0 = all_series["nr"].get(0.0)
    r_p1 = all_series["r"].get(1.0)
    if nr_p0 is not None and r_p1 is not None:
        assert r_p1 < nr_p0
