"""Ablation benches for the design decisions called out in DESIGN.md §5.

1. cancel-on-start latency — the zero-latency assumption;
2. common random numbers — variance of the paired estimator;
3. raw stretch vs bounded slowdown — metric choice;
4. CBF without vs with reservation compression.
"""

import numpy as np

from repro.analysis.registry import calibrated_config
from repro.analysis.tables import Table
from repro.core.metrics import bounded_slowdown
from repro.core.runner import run_replications


def _small(scale, **kw):
    cfg = calibrated_config(
        scale, n_clusters=6, nodes_per_cluster=64,
        duration=min(scale.duration, 1800.0),
    )
    return cfg.with_(**kw)


def test_ablation_cancellation_latency(benchmark, scale):
    """DESIGN.md §5.1: does the instantaneous-cancellation assumption
    matter?  With positive latency, sibling copies may start and waste
    node-seconds, but relative stretch should change only mildly."""

    def run():
        out = {}
        for latency in (0.0, 30.0, 300.0):
            cfg = _small(scale, scheme="HALF", cancellation_latency=latency)
            base = run_replications(
                cfg.with_(scheme="NONE"), scale.n_replications
            )
            res = run_replications(cfg, scale.n_replications)
            rel = float(np.mean(
                [r.avg_stretch / b.avg_stretch for r, b in zip(res, base)]
            ))
            out[latency] = rel
        return out

    rel = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Ablation — cancellation latency (HALF, N=6)",
                  columns=["relative avg stretch"])
    for latency, value in rel.items():
        table.add_row(f"{latency:.0f}s latency", [value])
    print()
    print(table.to_text())
    assert rel[0.0] < 1.0
    # Latency can only hurt: duplicate starts waste capacity.  (At 300 s
    # the waste can flip redundancy into a net loss — itself a finding
    # the zero-latency assumption hides; see EXPERIMENTS.md.)
    assert rel[0.0] <= rel[300.0] + 0.05


def test_ablation_common_random_numbers(benchmark, scale):
    """DESIGN.md §5.2: pairing via CRN shrinks the variance of the
    relative-stretch estimator vs using independent seeds."""

    def run():
        cfg = _small(scale, scheme="HALF")
        n = max(scale.n_replications, 3)
        base = run_replications(cfg.with_(scheme="NONE"), n)
        res = run_replications(cfg, n)
        paired = [r.avg_stretch / b.avg_stretch for r, b in zip(res, base)]
        # Break the pairing: baseline from a different master seed.
        base_indep = run_replications(
            cfg.with_(scheme="NONE", seed=cfg.seed + 977), n
        )
        unpaired = [
            r.avg_stretch / b.avg_stretch for r, b in zip(res, base_indep)
        ]
        return float(np.std(paired)), float(np.std(unpaired))

    paired_std, unpaired_std = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\npaired ratio std = {paired_std:.3f}, "
          f"unpaired ratio std = {unpaired_std:.3f}")
    # CRN should not *increase* variance; usually it shrinks it a lot.
    assert paired_std <= unpaired_std * 1.5


def test_ablation_bounded_slowdown_metric(benchmark, scale):
    """DESIGN.md §5.4: conclusions hold under bounded slowdown too."""

    def run():
        cfg = _small(scale, scheme="HALF")
        base = run_replications(cfg.with_(scheme="NONE"),
                                scale.n_replications)
        res = run_replications(cfg, scale.n_replications)

        def bsld(result):
            return float(np.mean([j.bounded_slowdown for j in result.jobs]))

        raw = float(np.mean(
            [r.avg_stretch / b.avg_stretch for r, b in zip(res, base)]
        ))
        bounded = float(np.mean(
            [bsld(r) / bsld(b) for r, b in zip(res, base)]
        ))
        return raw, bounded

    raw, bounded = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nrelative avg stretch: raw={raw:.3f}, bounded={bounded:.3f}")
    assert raw < 1.0
    assert bounded < 1.0


def test_ablation_cbf_compression(benchmark, scale):
    """DESIGN.md §5.3: our incremental CBF never recomputes reservations;
    eager textbook compression should produce similar (or slightly
    better) stretches at much higher cost."""

    def run():
        cfg = _small(scale, algorithm="cbf", scheme="HALF",
                     duration=min(scale.duration, 900.0))
        lazy = run_replications(cfg, max(2, scale.n_replications // 2))
        eager = run_replications(
            cfg.with_(cbf_compress_interval=0.0),
            max(2, scale.n_replications // 2),
        )
        lazy_stretch = float(np.mean([r.avg_stretch for r in lazy]))
        eager_stretch = float(np.mean([r.avg_stretch for r in eager]))
        lazy_wall = float(np.mean([r.wall_time_s for r in lazy]))
        eager_wall = float(np.mean([r.wall_time_s for r in eager]))
        return lazy_stretch, eager_stretch, lazy_wall, eager_wall

    lazy_s, eager_s, lazy_w, eager_w = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\nCBF avg stretch: no-compress={lazy_s:.1f}, eager={eager_s:.1f}")
    print(f"CBF wall time:   no-compress={lazy_w:.2f}s, eager={eager_w:.2f}s")
    # The approximation must not be dramatically worse for users.
    assert lazy_s <= eager_s * 1.5 + 1.0
