"""Table 3: heterogeneous platforms.

Paper: N=10 clusters with node counts drawn from {16, 32, 64, 128, 256}
and per-cluster mean inter-arrival times from [2 s, 20 s].  Expectation:
redundancy even more beneficial than in the homogeneous case (paper:
relative stretch 0.63-0.83, improving with the amount of redundancy;
relative CV 0.79-0.90).
"""

from .conftest import regenerate


def test_table3_heterogeneous(benchmark, scale):
    report = regenerate(benchmark, "tab3", scale)

    for scheme, metrics in report.data.items():
        assert metrics["avg_stretch"] < 1.0, (
            f"{scheme}: {metrics['avg_stretch']:.2f} >= 1 on heterogeneous "
            "platform"
        )
    # More redundancy should help at least as much (paper's monotone
    # trend, modulo replication noise).
    assert report.data["ALL"]["avg_stretch"] <= (
        report.data["R2"]["avg_stretch"] + 0.1
    )
