"""Section 3.1.2 robustness: requested-time inflation on remote copies.

Paper: padding redundant requests' durations by 10 % or 50 % (to leave
room for post-allocation input staging) "interestingly ... no
difference in our results".
"""

from .conftest import regenerate


def test_sec312_remote_inflation(benchmark, scale):
    report = regenerate(benchmark, "sec312", scale)

    base = report.data[0.0]
    for inflation in (0.10, 0.50):
        value = report.data[inflation]
        assert value < 1.0, f"+{inflation:.0%}: relative stretch {value:.2f}"
        assert abs(value - base) < 0.2, (
            f"+{inflation:.0%} changed the relative stretch from "
            f"{base:.2f} to {value:.2f} — the paper found no difference"
        )
