#!/usr/bin/env python3
"""Trace workflow: export a synthetic SWF trace, replay it, compare.

The paper cross-checked its model-based results against Parallel
Workloads Archive traces.  This example shows the full trace pipeline
on a synthetic stand-in (no network access needed): generate a Lublin
stream, write it as SWF, read it back, and replay it through two
redundancy schemes.  Point ``TRACE`` at a real ``.swf`` file from the
archive to repeat the paper's cross-check verbatim.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.tables import Table
from repro.cluster.platform import Platform
from repro.core.coordinator import Coordinator
from repro.core.schemes import TargetSelector, get_scheme
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.workload.lublin import scaled_for_load
from repro.workload.stream import StreamJob, generate_cluster_stream
from repro.workload.swf import read_swf, records_to_stream, stream_to_records, write_swf

N_CLUSTERS = 4
NODES = 64
TRACE: Path | None = None  # set to a real .swf path to replay it instead


def replay(jobs_per_cluster: list[list[StreamJob]], scheme_name: str) -> float:
    """Replay streams under one scheme; returns the average stretch."""
    sim = Simulator()
    platform = Platform(sim, [NODES] * N_CLUSTERS, algorithm="easy")
    coordinator = Coordinator(sim, platform)
    selector = TargetSelector(
        get_scheme(scheme_name), [NODES] * N_CLUSTERS,
        np.random.default_rng(0),
    )
    merged = sorted(
        (j for stream in jobs_per_cluster for j in stream),
        key=lambda j: (j.arrival, j.origin),
    )
    for spec in merged:
        targets = selector.choose(spec.origin, spec.nodes,
                                  spec.uses_redundancy)
        coordinator.schedule_job(spec, targets)
    sim.run()
    stretches = [
        (j.winner.end_time - j.spec.arrival) / j.spec.runtime
        for j in coordinator.jobs if j.completed
    ]
    return float(np.mean(stretches))


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_trace_"))
    params = scaled_for_load(2.0, NODES)
    streams = []
    for cluster in range(N_CLUSTERS):
        if TRACE is not None:
            records = list(read_swf(TRACE))
            stream = records_to_stream(records, origin=cluster,
                                       max_nodes=NODES)[:400]
        else:
            generated = generate_cluster_stream(
                RngFactory(5), 0, cluster, NODES, 1800.0, params=params
            )
            # Round-trip through SWF to exercise the trace pipeline.
            path = workdir / f"cluster{cluster}.swf"
            write_swf(path, stream_to_records(generated),
                      header_comments=[f"synthetic Lublin trace, "
                                       f"cluster {cluster}"])
            stream = records_to_stream(read_swf(path), origin=cluster,
                                       max_nodes=NODES)
        streams.append(stream)
    total = sum(len(s) for s in streams)
    print(f"replaying {total} jobs over {N_CLUSTERS} clusters "
          f"(traces in {workdir})\n")

    table = Table("Trace replay — average stretch by redundancy scheme",
                  columns=["avg stretch", "relative to NONE"])
    baseline = replay(streams, "NONE")
    table.add_row("NONE", [baseline, 1.0])
    for scheme in ("R2", "ALL"):
        value = replay(streams, scheme)
        table.add_row(scheme, [value, value / baseline])
    print(table.to_text())
    print(
        "\nThe paper: trace replay 'expectedly, did not observe "
        "significantly different results' from the model — the same "
        "pipeline works on real Parallel Workloads Archive files (set "
        "TRACE at the top of this script)."
    )


if __name__ == "__main__":
    main()
