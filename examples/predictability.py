#!/usr/bin/env python3
"""Queue-wait predictability under redundancy (Section 5 / Table 4).

Runs CBF clusters whose reservations double as wait-time predictions,
measures how far the predictions over-shoot reality, and shows how a
platform where 40% of jobs use redundant requests degrades everyone's
predictions.  Also evaluates the statistical (binomial-method)
predictor the paper points to as future work.

Run:  python examples/predictability.py
"""

from repro.analysis.tables import Table
from repro.core.config import ExperimentConfig
from repro.core.experiment import run_single
from repro.predict.binomial import evaluate_predictor
from repro.predict.study import run_table4_study


def main() -> None:
    print("running the Table 4 study (CBF, φ-model estimates)...")
    result = run_table4_study(
        n_clusters=8, duration=1500.0, offered_load=2.0,
        adoption=0.4, n_replications=3, seed=11,
    )
    table = Table(
        "Queue waiting time over-estimation (predicted / effective wait)",
        columns=["average ratio", "C.V. (%)", "median ratio", "jobs"],
    )
    for row in result.rows():
        table.add_row(row.label, [
            row.stats.mean_ratio, row.stats.cv_percent,
            row.stats.median_ratio, row.stats.count,
        ])
    print()
    print(table.to_text())
    print(
        f"\nWith 40% adoption, over-prediction grew "
        f"{result.degradation_non_redundant:.1f}x for non-redundant jobs "
        f"and {result.degradation_redundant:.1f}x for redundant jobs "
        "relative to the redundancy-free platform."
    )

    print("\nevaluating the binomial-method statistical predictor "
          "(paper's future-work pointer)...")
    cov_table = Table(
        "Binomial predictor: bound on the 0.9-quantile of waits "
        "(target coverage 0.90)",
        columns=["coverage", "predictions"],
    )
    cfg = ExperimentConfig(
        n_clusters=8, duration=1500.0, offered_load=2.0, drain=True,
        algorithm="cbf", estimates="phi", seed=11,
    )
    for scheme in ("NONE", "ALL"):
        res = run_single(cfg.with_(scheme=scheme), 0)
        waits = [j.wait_time for j in sorted(res.jobs,
                                             key=lambda j: j.end_time)]
        report = evaluate_predictor(waits, quantile=0.9, confidence=0.9,
                                    window=150)
        cov_table.add_row(scheme, [report.coverage, report.n_predictions])
    print()
    print(cov_table.to_text())
    print(
        "\nReading: the state-based CBF prediction was already ~several-fold "
        "conservative; redundancy churn makes it far worse, while the "
        "history-based statistical bound keeps its advertised coverage — "
        "matching the paper's closing argument for statistical forecasting."
    )


if __name__ == "__main__":
    main()
