#!/usr/bin/env python3
"""Redundancy on a heterogeneous grid (Table 3), plus the metascheduler.

Simulates a federation of differently sized clusters (16-256 nodes)
with different arrival rates, compares redundancy schemes against the
local-only baseline, and adds the informed alternative the paper
contrasts itself with: a metascheduler that places each job once, on
the least-loaded eligible cluster.

Run:  python examples/heterogeneous_grid.py
"""

import numpy as np

from repro import ExperimentConfig, compare_schemes, run_replications
from repro.analysis.tables import Table
from repro.ext.metascheduler import run_metascheduler_experiment

REPS = 3


def main() -> None:
    config = ExperimentConfig(
        n_clusters=10,
        heterogeneous=True,          # nodes from {16,32,64,128,256}
        interarrival_range=(2.0, 20.0),
        duration=1800.0,
        offered_load=2.0,
        drain=True,
        seed=7,
    )
    print("running redundancy schemes on a heterogeneous platform...")
    comparison = compare_schemes(config, ["R2", "HALF", "ALL"], REPS)

    print("running the metascheduler baseline on the same streams...")
    meta = [run_metascheduler_experiment(config, rep) for rep in range(REPS)]
    meta_rel = float(np.mean([
        m.avg_stretch / b.avg_stretch
        for m, b in zip(meta, comparison.baseline)
    ]))

    table = Table(
        "Heterogeneous platform — relative average stretch vs local-only",
        columns=["rel. avg stretch", "rel. CV of stretches"],
    )
    for scheme in ("R2", "HALF", "ALL"):
        rel = comparison.relative(scheme)
        table.add_row(f"user redundancy {scheme}",
                      [rel.avg_stretch, rel.cv_stretch])
    table.add_row("metascheduler (1 placement)", [meta_rel, None])
    print()
    print(table.to_text())

    remote = float(np.mean([
        r.remote_fraction() for r in comparison.per_scheme["ALL"]
    ]))
    print(
        f"\nUnder ALL, {remote:.0%} of redundant jobs ended up running "
        "away from their home cluster — heterogeneity is exactly where "
        "load balancing has the most to move, which is why the paper "
        "finds redundancy *more* beneficial here (Table 3)."
    )


if __name__ == "__main__":
    main()
