#!/usr/bin/env python3
"""System-load view (Section 4): who breaks first as redundancy grows?

Reproduces the paper's capacity analysis — the batch scheduler tolerates
~30 redundant requests per job, the grid middleware only ~3 — and
regenerates the Figure 5 churn-throughput curve from the calibrated
OpenPBS/Maui daemon model, alongside a wall-clock measurement of this
package's own schedulers under the same qsub/qdel churn protocol.

Run:  python examples/middleware_capacity.py
"""

from repro.analysis.plots import AsciiPlot
from repro.analysis.tables import Table
from repro.middleware import (
    average_curve,
    capacity_report,
    churn_curve,
    gt4_wsgram_model,
    measure_real_scheduler_throughput,
    paper_calibrated_model,
)


def main() -> None:
    report = capacity_report()
    print("Section 4 capacity analysis (peak arrivals: one job / 5 s):\n")
    for line in report.lines():
        print("  " + line)

    mw = gt4_wsgram_model()
    print(
        f"\n  sanity: {mw.name} sustains {mw.tx_per_sec:.2f} tx/s; at 3 "
        "redundant requests per job the middleware sees "
        f"{3 / 5.0:.2f} submissions/s -> utilisation "
        f"{mw.utilization(3 / 5.0 + 2 / 5.0):.2f} (saturated)."
    )

    print("\nregenerating Figure 5 from the calibrated daemon model...")
    model = paper_calibrated_model()
    curves = churn_curve(
        model, queue_sizes=(0, 2500, 5000, 10000, 15000, 20000),
        duration_s=3600.0, n_repetitions=4,
    )
    avg = average_curve(curves)
    plot = AsciiPlot(
        "Figure 5 — sustained submissions/s under maximal churn",
        xlabel="queue size (pending requests)", ylabel="submissions/s",
    )
    plot.add_series("PBS/Maui model",
                    [(s.queue_size, s.submissions_per_sec) for s in avg])
    print()
    print(plot.render())

    print("\nmeasuring this package's own schedulers under the same "
          "protocol (wall clock)...")
    table = Table(
        "Measured: submit+cancel pairs per second, queue pre-filled to 2000",
        columns=["ops pairs / second"], precision=0,
    )
    for algorithm in ("fcfs", "easy", "cbf"):
        rate = measure_real_scheduler_throughput(
            algorithm, queue_size=2000, n_ops=1000
        )
        table.add_row(algorithm.upper(), [rate])
    print()
    print(table.to_text())
    print(
        "\nReading: even at 10,000 queued requests the 2006 scheduler "
        "handled ~6 submissions+cancellations/s — enough for ~30 redundant "
        "requests per job — while the era's grid middleware saturated at "
        "~3.  The middleware, not the scheduler, gates redundancy."
    )


if __name__ == "__main__":
    main()
