#!/usr/bin/env python3
"""The fairness story (Figure 4): what happens to users who don't adopt?

Sweeps the fraction p of jobs using the ALL redundancy scheme and
reports, for each p, the average stretch of adopters and non-adopters
plus the *paired* non-adopter penalty — how much worse the identical
set of non-adopting jobs fares compared to a world where nobody adopts.

Run:  python examples/partial_adoption.py
"""

import numpy as np

from repro import ExperimentConfig, run_replications
from repro.analysis.plots import AsciiPlot
from repro.analysis.tables import Table
from repro.core.runner import paired_nonadopter_penalty

FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
REPS = 3


def mean_stretch(results, redundant):
    vals = []
    for r in results:
        s = r.stretches(redundant=redundant)
        if s.size:
            vals.append(float(s.mean()))
    return float(np.mean(vals)) if vals else float("nan")


def main() -> None:
    base = ExperimentConfig(
        n_clusters=10, nodes_per_cluster=64, duration=1800.0,
        offered_load=2.0, drain=True, scheme="ALL", seed=42,
    )
    table = Table(
        "Average stretch vs adoption fraction p (scheme ALL, N=10)",
        columns=["adopters (r jobs)", "non-adopters (n-r jobs)",
                 "paired n-r penalty"],
    )
    plot = AsciiPlot(
        "Figure-4-style view: stretch vs % of jobs using redundancy",
        xlabel="% of jobs using redundant requests",
        ylabel="average stretch",
    )
    r_pts, nr_pts = [], []
    for p in FRACTIONS:
        results = run_replications(
            base.with_(adoption_probability=p), REPS
        )
        r_mean = mean_stretch(results, redundant=True)
        nr_mean = mean_stretch(results, redundant=False)
        penalty = (
            paired_nonadopter_penalty(base, "ALL", p, REPS)
            if 0.0 < p < 1.0 else float("nan")
        )
        table.add_row(f"p = {p:.0%}", [r_mean, nr_mean, penalty])
        if r_mean == r_mean:
            r_pts.append((100 * p, r_mean))
        if nr_mean == nr_mean:
            nr_pts.append((100 * p, nr_mean))
        print(f"  p={p:.0%} done")
    plot.add_series("adopters", r_pts)
    plot.add_series("non-adopters", nr_pts)
    print()
    print(table.to_text())
    print()
    print(plot.render())
    print(
        "\nReading: adopters always come out ahead of non-adopters at the "
        "same p, and the paired penalty column shows the *same* "
        "non-adopting jobs doing worse purely because others adopted — "
        "the paper's central fairness concern."
    )


if __name__ == "__main__":
    main()
