#!/usr/bin/env python3
"""Quickstart: is sending redundant batch requests worth it?

Simulates a 10-cluster platform (64 nodes each, EASY backfilling) under
a calibrated Lublin–Feitelson workload and compares three redundancy
schemes against submitting to the local cluster only — the core
question of Casanova's HPDC'06 paper.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, compare_schemes
from repro.analysis.tables import Table


def main() -> None:
    config = ExperimentConfig(
        n_clusters=10,
        nodes_per_cluster=64,
        algorithm="easy",
        duration=1800.0,       # 30 minutes of submissions per cluster
        offered_load=2.0,      # moderately overloaded (see DESIGN.md)
        drain=True,            # run every job to completion
        seed=2006,
    )
    print(f"platform: {config.describe()}")
    print("running NONE, R2, HALF, ALL on paired job streams "
          "(3 replications)...\n")

    comparison = compare_schemes(
        config, ["R2", "HALF", "ALL"], n_replications=3,
        progress=lambda msg: print(f"  {msg}"),
    )

    table = Table(
        "\nAverage stretch and fairness, relative to no redundancy "
        "(< 1 means redundancy wins)",
        columns=["rel. avg stretch", "rel. CV of stretches",
                 "rel. max stretch", "win fraction"],
    )
    for scheme in ("R2", "HALF", "ALL"):
        rel = comparison.relative(scheme)
        table.add_row(scheme, [rel.avg_stretch, rel.cv_stretch,
                               rel.max_stretch, rel.win_fraction])
    print(table.to_text())

    best = min(
        ("R2", "HALF", "ALL"),
        key=lambda s: comparison.relative(s).avg_stretch,
    )
    rel = comparison.relative(best)
    print(
        f"\nVerdict: {best} gives the best average stretch "
        f"({rel.avg_stretch:.2f}x the no-redundancy baseline), winning in "
        f"{rel.win_fraction:.0%} of paired replications — redundant "
        "requests pay off for the users who send them."
    )
    print("The catch (run examples/partial_adoption.py): users who don't "
          "send them foot the bill.")


if __name__ == "__main__":
    main()
